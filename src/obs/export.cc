#include "src/obs/export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bft {

std::string MetricsAndTracesJson(const MetricsRegistry& registry, const RequestTracer* tracer) {
  std::string out = "{\n\"metrics\": " + registry.RenderJson();
  if (tracer != nullptr) {
    out += ",\n\"traces\": " + tracer->RenderJson();
  }
  out += "}\n";
  return out;
}

bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const RequestTracer* tracer) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteMetricsJson: cannot write %s\n", path.c_str());
    return false;
  }
  std::string body = MetricsAndTracesJson(registry, tracer);
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return written == body.size();
}

AdminServer::~AdminServer() { Stop(); }

bool AdminServer::Listen(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("AdminServer: socket");
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    std::perror("AdminServer: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true);
  thread_ = std::thread([this]() { Serve(); });
  return true;
}

void AdminServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // shutdown unblocks the accept; close invalidates the fd for good measure.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) {
    thread_.join();
  }
}

void AdminServer::Serve() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed (Stop) or terminal error
    }
    // A client that connects and never finishes its request line must not wedge the accept
    // thread: cap the wait (SO_RCVTIMEO) and the line length, then answer with an error so
    // the next connection gets served.
    timeval deadline{};
    deadline.tv_sec = read_timeout_ms_ / 1000;
    deadline.tv_usec = (read_timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline, sizeof(deadline));
    char req[4096];
    size_t have = 0;
    bool line_complete = false;
    bool timed_out = false;
    while (have < sizeof(req) - 1) {
      ssize_t n = ::recv(fd, req + have, sizeof(req) - 1 - have, 0);
      if (n <= 0) {
        timed_out = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
        break;  // peer closed mid-request, deadline hit, or error
      }
      have += static_cast<size_t>(n);
      req[have] = '\0';
      if (std::strchr(req, '\n') != nullptr) {
        line_complete = true;
        break;
      }
    }
    req[have] = '\0';
    if (!line_complete && have == 0 && !timed_out) {
      ::close(fd);  // peer hung up without sending anything; nobody to answer
      continue;
    }
    std::string body;
    const char* content_type = "text/plain; charset=utf-8";
    const char* status = "200 OK";
    if (!line_complete) {
      status = timed_out ? "408 Request Timeout" : "400 Bad Request";
      body = "request line never completed\n";
    } else if (std::strncmp(req, "GET /metrics.json", 17) == 0) {
      body = MetricsAndTracesJson(*registry_, tracer_);
      content_type = "application/json";
    } else if (std::strncmp(req, "GET /metrics", 12) == 0) {
      body = registry_->RenderPrometheusText();
      content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (std::strncmp(req, "GET /traces", 11) == 0 && tracer_ != nullptr) {
      body = tracer_->RenderJson();
      content_type = "application/json";
    } else if (std::strncmp(req, "GET /healthz", 12) == 0 && health_source_) {
      body = RenderHealthJson(health_source_());
      content_type = "application/json";
    } else {
      status = "404 Not Found";
      body = "not found; try /metrics, /metrics.json, /traces, /healthz\n";
    }
    char header[256];
    int hlen = std::snprintf(header, sizeof(header),
                             "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                             "Connection: close\r\n\r\n",
                             status, content_type, body.size());
    // Best-effort: a scraper that hung up early is its own problem.
    (void)!::send(fd, header, static_cast<size_t>(hlen), MSG_NOSIGNAL);
    (void)!::send(fd, body.data(), body.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
}

}  // namespace bft

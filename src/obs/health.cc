#include "src/obs/health.h"

#include <cstdio>

namespace bft {

namespace {

std::string ReplicaTag(NodeId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "replica %u", id);
  return buf;
}

}  // namespace

HealthVerdict EvaluateHealth(const HealthSnapshot& snapshot) {
  HealthVerdict verdict;
  uint64_t view_min = UINT64_MAX;
  uint64_t view_max = 0;
  size_t running = 0;
  for (const ReplicaHealth& r : snapshot.replicas) {
    if (!r.running) {
      verdict.reasons.push_back(ReplicaTag(r.id) + " down");
      continue;
    }
    ++running;
    view_min = r.view < view_min ? r.view : view_min;
    view_max = r.view > view_max ? r.view : view_max;
    if (!r.view_active) {
      verdict.reasons.push_back(ReplicaTag(r.id) + " in view change");
    }
    if (r.transfer_active) {
      verdict.reasons.push_back(ReplicaTag(r.id) + " state transfer in progress");
    }
  }
  if (running > 1 && view_min != view_max) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "view divergence (min %llu, max %llu)",
                  static_cast<unsigned long long>(view_min),
                  static_cast<unsigned long long>(view_max));
    verdict.reasons.push_back(buf);
  }
  if (snapshot.active_migrations > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu migration(s) in flight",
                  static_cast<unsigned long long>(snapshot.active_migrations));
    verdict.reasons.push_back(buf);
  }
  if (snapshot.frozen_buckets > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu bucket(s) frozen",
                  static_cast<unsigned long long>(snapshot.frozen_buckets));
    verdict.reasons.push_back(buf);
  }
  if (snapshot.faults_armed) {
    verdict.reasons.push_back("fault injection armed");
  }
  verdict.ok = verdict.reasons.empty();
  return verdict;
}

std::string RenderHealthJson(const HealthSnapshot& snapshot) {
  HealthVerdict verdict = EvaluateHealth(snapshot);
  std::string out = "{\n  \"status\": \"";
  out += verdict.ok ? "ok" : "degraded";
  out += "\",\n  \"reasons\": [";
  for (size_t i = 0; i < verdict.reasons.size(); ++i) {
    out += i == 0 ? "\"" : ", \"";
    out += verdict.reasons[i];  // reason strings are ASCII with no JSON-hostile characters
    out += "\"";
  }
  out += "],\n  \"replicas\": [\n";
  for (size_t i = 0; i < snapshot.replicas.size(); ++i) {
    const ReplicaHealth& r = snapshot.replicas[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s    {\"id\": %u, \"running\": %s, \"view\": %llu, "
                  "\"view_active\": %s, \"last_stable\": %llu, \"high_water\": %llu, "
                  "\"last_executed\": %llu, \"transfer_active\": %s}",
                  i == 0 ? "" : ",\n", r.id, r.running ? "true" : "false",
                  static_cast<unsigned long long>(r.view), r.view_active ? "true" : "false",
                  static_cast<unsigned long long>(r.last_stable),
                  static_cast<unsigned long long>(r.high_water),
                  static_cast<unsigned long long>(r.last_executed),
                  r.transfer_active ? "true" : "false");
    out += buf;
  }
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "\n  ],\n  \"faults\": {\"armed\": %s, \"injected\": %llu},\n"
                "  \"shards\": {\"active_migrations\": %llu, \"frozen_buckets\": %llu, "
                "\"map_version\": %llu}\n}\n",
                snapshot.faults_armed ? "true" : "false",
                static_cast<unsigned long long>(snapshot.faults_injected),
                static_cast<unsigned long long>(snapshot.active_migrations),
                static_cast<unsigned long long>(snapshot.frozen_buckets),
                static_cast<unsigned long long>(snapshot.shard_map_version));
  out += tail;
  return out;
}

}  // namespace bft

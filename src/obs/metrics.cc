#include "src/obs/metrics.h"

#include <cstdio>

namespace bft {

uint64_t Histogram::Percentile(double pct) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0;
  }
  // Rank of the target sample, 1-based; pct=0 maps to the first sample, 100 to the last.
  uint64_t rank = static_cast<uint64_t>(pct / 100.0 * static_cast<double>(total - 1)) + 1;
  if (rank > total) {
    rank = total;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Process() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: outlives all users
  return *registry;
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreate(const std::string& name,
                                                       const std::string& labels, Kind kind) {
  MutexLock lock(mu_);
  Series& s = families_[name][labels];
  if (s.counter == nullptr && s.gauge == nullptr && s.histogram == nullptr && !s.probe) {
    s.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        s.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        s.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        s.histogram = std::make_unique<Histogram>();
        break;
      case Kind::kProbe:
        break;  // caller fills s.probe
    }
  }
  return &s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& labels) {
  return FindOrCreate(name, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& labels) {
  return FindOrCreate(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, const std::string& labels) {
  return FindOrCreate(name, labels, Kind::kHistogram)->histogram.get();
}

void MetricsRegistry::RegisterProbe(const std::string& name, const std::string& labels,
                                    std::function<uint64_t()> read) {
  MutexLock lock(mu_);
  Series& s = families_[name][labels];
  s.kind = Kind::kProbe;
  s.probe = std::move(read);
}

namespace {

std::string SeriesName(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, series] : families_) {
    Kind kind = series.begin()->second.kind;
    out += "# TYPE " + name;
    switch (kind) {
      case Kind::kCounter:
        out += " counter\n";
        break;
      case Kind::kGauge:
      case Kind::kProbe:
        out += " gauge\n";
        break;
      case Kind::kHistogram:
        out += " histogram\n";
        break;
    }
    for (const auto& [labels, s] : series) {
      switch (s.kind) {
        case Kind::kCounter:
          out += SeriesName(name, labels) + " ";
          AppendU64(out, s.counter->value());
          out += "\n";
          break;
        case Kind::kGauge:
          out += SeriesName(name, labels) + " ";
          AppendI64(out, s.gauge->value());
          out += "\n";
          break;
        case Kind::kProbe:
          out += SeriesName(name, labels) + " ";
          AppendU64(out, s.probe ? s.probe() : 0);
          out += "\n";
          break;
        case Kind::kHistogram: {
          // Cumulative buckets; only boundaries with observations are emitted (legal in the
          // exposition format: `le` stays strictly increasing and +Inf closes the series).
          uint64_t cumulative = 0;
          std::string prefix = labels.empty() ? "" : labels + ",";
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            uint64_t c = s.histogram->bucket_count(i);
            if (c == 0) {
              continue;
            }
            cumulative += c;
            out += name + "_bucket{" + prefix + "le=\"";
            AppendU64(out, Histogram::BucketUpperBound(i));
            out += "\"} ";
            AppendU64(out, cumulative);
            out += "\n";
          }
          out += name + "_bucket{" + prefix + "le=\"+Inf\"} ";
          AppendU64(out, cumulative);
          out += "\n";
          out += SeriesName(name + "_sum", labels) + " ";
          AppendU64(out, s.histogram->sum());
          out += "\n";
          out += SeriesName(name + "_count", labels) + " ";
          AppendU64(out, cumulative);
          out += "\n";
          // Pre-computed quantile summaries (bucket upper bounds, so approximate): scrapers
          // without a query engine — and the /healthz CI smoke — read p99 straight off the
          // text. Unknown suffixes are untyped series to Prometheus, which is legal.
          for (double pct : {50.0, 95.0, 99.0}) {
            char suffix[8];
            std::snprintf(suffix, sizeof(suffix), "_p%d", static_cast<int>(pct));
            out += SeriesName(name + suffix, labels) + " ";
            AppendU64(out, s.histogram->Percentile(pct));
            out += "\n";
          }
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  MutexLock lock(mu_);
  std::string scalars;
  std::string histograms;
  for (const auto& [name, series] : families_) {
    for (const auto& [labels, s] : series) {
      std::string id = SeriesName(name, labels);
      // Series ids only contain identifier characters, digits, and label punctuation — the
      // one JSON-hostile character possible is the label-value quote, which gets escaped.
      std::string escaped;
      for (char c : id) {
        if (c == '"' || c == '\\') {
          escaped += '\\';
        }
        escaped += c;
      }
      switch (s.kind) {
        case Kind::kCounter:
          scalars += (scalars.empty() ? "" : ",\n    ") + ("\"" + escaped + "\": ");
          AppendU64(scalars, s.counter->value());
          break;
        case Kind::kGauge:
          scalars += (scalars.empty() ? "" : ",\n    ") + ("\"" + escaped + "\": ");
          AppendI64(scalars, s.gauge->value());
          break;
        case Kind::kProbe:
          scalars += (scalars.empty() ? "" : ",\n    ") + ("\"" + escaped + "\": ");
          AppendU64(scalars, s.probe ? s.probe() : 0);
          break;
        case Kind::kHistogram: {
          histograms +=
              (histograms.empty() ? "" : ",\n    ") + ("\"" + escaped + "\": {\"count\": ");
          AppendU64(histograms, s.histogram->count());
          histograms += ", \"sum\": ";
          AppendU64(histograms, s.histogram->sum());
          histograms += ", \"p50\": ";
          AppendU64(histograms, s.histogram->Percentile(50));
          histograms += ", \"p95\": ";
          AppendU64(histograms, s.histogram->Percentile(95));
          histograms += ", \"p99\": ";
          AppendU64(histograms, s.histogram->Percentile(99));
          histograms += "}";
          break;
        }
      }
    }
  }
  return "{\n  \"series\": {\n    " + scalars + "\n  },\n  \"histograms\": {\n    " +
         histograms + "\n  }\n}\n";
}

void MetricsRegistry::VisitScalars(
    const std::function<void(const std::string&, const std::string&, int64_t)>& fn) const {
  MutexLock lock(mu_);
  for (const auto& [name, series] : families_) {
    for (const auto& [labels, s] : series) {
      switch (s.kind) {
        case Kind::kCounter:
          fn(name, labels, static_cast<int64_t>(s.counter->value()));
          break;
        case Kind::kGauge:
          fn(name, labels, s.gauge->value());
          break;
        case Kind::kProbe:
          fn(name, labels, static_cast<int64_t>(s.probe ? s.probe() : 0));
          break;
        case Kind::kHistogram:
          break;
      }
    }
  }
}

}  // namespace bft

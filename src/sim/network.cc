#include "src/sim/network.h"

namespace bft {

bool Network::Blocked(NodeId src, NodeId dst) const {
  if (down_nodes_.count(src) != 0 || down_nodes_.count(dst) != 0) {
    return true;
  }
  if (blocked_links_.count({src, dst}) != 0) {
    return true;
  }
  if (partitioned_) {
    bool src_in = partition_group_.count(src) != 0;
    bool dst_in = partition_group_.count(dst) != 0;
    if (src_in != dst_in) {
      return true;
    }
  }
  return false;
}

void Network::DeliverOne(NodeId src, NodeId dst, MsgBuffer msg, SimTime departure) {
  if (Blocked(src, dst)) {
    return;
  }
  if (filter_ && filter_(src, dst, msg.bytes()) == FilterAction::kDrop) {
    return;
  }
  if (options_.drop_probability > 0.0 && sim_->rng().Chance(options_.drop_probability)) {
    return;
  }
  int copies = 1;
  if (options_.duplicate_probability > 0.0 &&
      sim_->rng().Chance(options_.duplicate_probability)) {
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    SimTime jitter = options_.jitter_ns > 0 ? sim_->rng().Below(options_.jitter_ns) : 0;
    SimTime arrival = departure + WireLatency(msg.size()) + jitter;
    // In-flight copies and duplicates all share the one encoded buffer by refcount.
    sim_->ScheduleAt(arrival, [this, dst, msg]() {
      auto it = peers_.find(dst);
      if (it == peers_.end()) {
        return;  // Node was unregistered (e.g., crashed) while the message was in flight.
      }
      ++messages_delivered_;
      CpuMeter* cpu = meters_[dst];
      cpu->BeginEvent(sim_->Now());
      cpu->Charge(RecvCpuCost(msg.size()));
      it->second->Deliver(msg);
      cpu->EndEvent();
    });
  }
}

void Network::Send(NodeId src, NodeId dst, MsgBuffer msg, SimTime departure) {
  ++messages_sent_;
  bytes_sent_ += msg.size();
  DeliverOne(src, dst, std::move(msg), departure);
}

void Network::Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& msg,
                        SimTime departure) {
  ++messages_sent_;
  bytes_sent_ += msg.size();
  for (NodeId dst : dsts) {
    if (dst == src) {
      continue;
    }
    DeliverOne(src, dst, msg, departure);
  }
}

void Network::SetNodeDown(NodeId id, bool down) {
  if (down) {
    down_nodes_.insert(id);
  } else {
    down_nodes_.erase(id);
  }
}

void Network::SetLinkBlocked(NodeId src, NodeId dst, bool blocked) {
  if (blocked) {
    blocked_links_.insert({src, dst});
  } else {
    blocked_links_.erase({src, dst});
  }
}

void Network::Partition(const std::set<NodeId>& group) {
  partition_group_ = group;
  partitioned_ = true;
}

void Network::HealPartition() {
  partitioned_ = false;
  partition_group_.clear();
}

}  // namespace bft

// Simulator-backed Endpoint implementation.
//
// Adapts a simulated node to the core's runtime seam: sends depart at the node's CPU cursor
// through the modelled unreliable Network, timers are simulator events whose handlers run
// bracketed by the node's CpuMeter, and the clock is simulated time. The CpuMeter call
// pattern (BeginEvent / Charge / EndEvent around every delivery and timer) is what makes
// saturation — and the paper's throughput ceilings — emerge; it is preserved bit-for-bit
// across the seam refactor so identical seeds produce identical runs.
#ifndef SRC_SIM_NODE_H_
#define SRC_SIM_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/endpoint.h"
#include "src/sim/network.h"

namespace bft {

class Node : public Endpoint, public NetPeer {
 public:
  Node(Simulator* sim, Network* net, NodeId id) : Endpoint(id), sim_(sim), net_(net) {
    net_->Register(id, this, &cpu_);
  }
  ~Node() override {
    Detach();
    CancelAllTimers();
  }

  Simulator* sim() { return sim_; }
  Network* net() { return net_; }

  // NetPeer: called by the network with CPU accounting already started.
  void Deliver(MsgBuffer message) final {
    if (!attached_) {
      return;
    }
    Dispatch(std::move(message));
  }

  // --- Endpoint ----------------------------------------------------------------------------
  SimTime Now() const override { return sim_->Now(); }
  CpuMeter& cpu() override { return cpu_; }
  Rng& rng() override { return sim_->rng(); }

  void Send(NodeId dst, MsgBuffer msg) override {
    cpu_.Charge(net_->SendCpuCost(msg.size()));
    net_->Send(id(), dst, std::move(msg), cpu_.cursor());
  }

  void Multicast(const std::vector<NodeId>& dsts, const MsgBuffer& msg) override {
    cpu_.Charge(net_->SendCpuCost(msg.size()));
    net_->Multicast(id(), dsts, msg, cpu_.cursor());
  }

  TimerId SetTimer(SimTime delay, std::function<void()> fn) override {
    return Arm(delay, /*period=*/0, std::move(fn));
  }

  TimerId SetPeriodicTimer(SimTime period, std::function<void()> fn) override {
    return Arm(period, period, std::move(fn));
  }

  void CancelTimer(TimerId id) override {
    auto it = timers_.find(id);
    if (it == timers_.end()) {
      return;
    }
    sim_->Cancel(it->second.event);
    timers_.erase(it);
  }

  bool ResetTimer(TimerId id, SimTime delay) override {
    auto it = timers_.find(id);
    if (it == timers_.end()) {
      return false;
    }
    sim_->Cancel(it->second.event);
    it->second.event = Schedule(id, delay);
    return true;
  }

  void CancelAllTimers() override {
    for (auto& [id, timer] : timers_) {
      sim_->Cancel(timer.event);
    }
    timers_.clear();
  }

  // Removes the node from the network; in-flight deliveries to it are dropped.
  void Detach() override {
    if (attached_) {
      net_->Unregister(id());
      attached_ = false;
    }
  }
  void Reattach() override {
    if (!attached_) {
      net_->Register(id(), this, &cpu_);
      attached_ = true;
    }
  }
  bool attached() const override { return attached_; }

 private:
  struct Timer {
    Simulator::EventId event = 0;
    SimTime period = 0;  // 0 = one-shot
    std::function<void()> fn;
  };

  TimerId Arm(SimTime delay, SimTime period, std::function<void()> fn) {
    TimerId id = next_timer_++;
    timers_.emplace(id, Timer{0, period, std::move(fn)});
    timers_[id].event = Schedule(id, delay);
    return id;
  }

  // Schedules the simulator event for timer `id`. Handlers run under CPU accounting exactly
  // like message deliveries.
  Simulator::EventId Schedule(TimerId id, SimTime delay) {
    return sim_->Schedule(delay, [this, id]() {
      auto it = timers_.find(id);
      if (it == timers_.end()) {
        return;  // cancelled between scheduling and firing (defensive; Cancel removes events)
      }
      // Copy the callback out: a one-shot entry is erased before running so the handler can
      // re-arm freely; a periodic entry re-schedules itself first for the same reason.
      std::function<void()> fn = it->second.fn;
      if (it->second.period == 0) {
        timers_.erase(it);
      } else {
        it->second.event = Schedule(id, it->second.period);
      }
      cpu_.BeginEvent(sim_->Now());
      fn();
      cpu_.EndEvent();
    });
  }

  Simulator* sim_;
  Network* net_;
  CpuMeter cpu_;
  bool attached_ = true;
  TimerId next_timer_ = 1;
  std::map<TimerId, Timer> timers_;
};

}  // namespace bft

#endif  // SRC_SIM_NODE_H_

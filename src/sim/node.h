// Base class for simulated protocol participants (replicas and clients).
//
// Wraps network delivery and timers so that all handler execution is bracketed by the node's
// CpuMeter, and all sends depart at the node's CPU cursor.
#ifndef SRC_SIM_NODE_H_
#define SRC_SIM_NODE_H_

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/sim/network.h"

namespace bft {

class Node : public NetPeer {
 public:
  Node(Simulator* sim, Network* net, NodeId id) : sim_(sim), net_(net), id_(id) {
    net_->Register(id_, this, &cpu_);
  }
  ~Node() override { Detach(); }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  CpuMeter& cpu() { return cpu_; }
  Simulator* sim() { return sim_; }
  Network* net() { return net_; }

  // NetPeer: called by the network with CPU accounting already started.
  void Deliver(Bytes message) final {
    if (!attached_) {
      return;
    }
    OnMessage(std::move(message));
  }

  // Subclass hook: handle an (unauthenticated) message off the wire.
  virtual void OnMessage(Bytes message) = 0;

 protected:
  // Removes the node from the network; in-flight deliveries to it are dropped.
  void Detach() {
    if (attached_) {
      net_->Unregister(id_);
      attached_ = false;
    }
  }
  void Reattach() {
    if (!attached_) {
      net_->Register(id_, this, &cpu_);
      attached_ = true;
    }
  }

  void ChargeCpu(SimTime ns) { cpu_.Charge(ns); }

  void SendTo(NodeId dst, Bytes msg) {
    ChargeCpu(net_->SendCpuCost(msg.size()));
    net_->Send(id_, dst, std::move(msg), cpu_.cursor());
  }

  void MulticastTo(const std::vector<NodeId>& dsts, const Bytes& msg) {
    ChargeCpu(net_->SendCpuCost(msg.size()));
    net_->Multicast(id_, dsts, msg, cpu_.cursor());
  }

  // Timers. Handlers run under CPU accounting like message deliveries.
  Simulator::EventId SetTimer(SimTime delay, std::function<void()> fn) {
    auto id_holder = std::make_shared<Simulator::EventId>(0);
    Simulator::EventId id = sim_->Schedule(delay, [this, fn = std::move(fn), id_holder]() {
      pending_timers_.erase(*id_holder);
      cpu_.BeginEvent(sim_->Now());
      fn();
      cpu_.EndEvent();
    });
    *id_holder = id;
    pending_timers_.insert(id);
    return id;
  }

  void CancelTimer(Simulator::EventId id) {
    sim_->Cancel(id);
    pending_timers_.erase(id);
  }

  void CancelAllTimers() {
    for (Simulator::EventId id : pending_timers_) {
      sim_->Cancel(id);
    }
    pending_timers_.clear();
  }

 private:
  Simulator* sim_;
  Network* net_;
  NodeId id_;
  CpuMeter cpu_;
  bool attached_ = true;
  std::set<Simulator::EventId> pending_timers_;
};

}  // namespace bft

#endif  // SRC_SIM_NODE_H_

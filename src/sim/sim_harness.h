// Shared simulator-harness helpers.
//
// Cluster (one replica group) and ShardedCluster (S groups) drive the same simulator the same
// way: issue an op through a client and run until its reply certificate completes, wait for a
// replica group to execute up to a sequence number, and read off a group's current primary.
// One definition here keeps the two harnesses in lockstep.
#ifndef SRC_SIM_SIM_HARNESS_H_
#define SRC_SIM_SIM_HARNESS_H_

#include <memory>
#include <optional>

#include "src/common/bytes.h"
#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/sim/simulator.h"

namespace bft {
namespace sim_harness {

// Synchronously executes one operation through `client` (Client or ShardedClient): runs the
// simulator until the reply certificate completes or `timeout` of simulated time passes.
template <typename ClientT>
std::optional<Bytes> Execute(Simulator& sim, ClientT* client, Bytes op, bool read_only,
                             SimTime timeout) {
  // Shared, not stack-captured: on timeout the client still holds the callback, which may
  // fire during a later simulator run after this frame is gone.
  auto result = std::make_shared<std::optional<Bytes>>();
  client->Invoke(std::move(op), read_only, [result](Bytes r) { *result = std::move(r); });
  sim.RunUntilCondition([result]() { return result->has_value(); }, sim.Now() + timeout);
  return *result;
}

// Runs the simulator until every live replica in `replicas` (a range of Replica smart/raw
// pointers) has executed up to `seq`, or `timeout` of simulated time passes.
template <typename ReplicaRange>
bool WaitForExecution(Simulator& sim, const ReplicaRange& replicas, SeqNo seq,
                      SimTime timeout) {
  return sim.RunUntilCondition(
      [&replicas, seq]() {
        for (const auto& replica : replicas) {
          if (!replica->crashed() && replica->last_executed() < seq) {
            return false;
          }
        }
        return true;
      },
      sim.Now() + timeout);
}

// Node id of the group's current primary according to its first live replica (crashed
// replicas are frozen in their pre-crash view).
template <typename ReplicaRange>
NodeId CurrentPrimary(const ReplicaConfig& config, const ReplicaRange& replicas) {
  for (const auto& replica : replicas) {
    if (!replica->crashed()) {
      return config.PrimaryOf(replica->view());
    }
  }
  return config.PrimaryOf(replicas[0]->view());
}

}  // namespace sim_harness
}  // namespace bft

#endif  // SRC_SIM_SIM_HARNESS_H_

// Unreliable network substrate.
//
// Models the paper's environment: UDP point-to-point plus UDP-over-IP-multicast to the replica
// group, on a switched LAN. The channel may drop, duplicate, reorder (via jitter), and delay
// messages; it never authenticates senders (receivers authenticate via MACs/signatures at the
// protocol layer). Fault injection hooks allow tests to partition nodes, cut links, and run a
// Byzantine filter over traffic.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/msg_buffer.h"
#include "src/core/clock.h"
#include "src/core/cpu_meter.h"
#include "src/model/perf_model.h"  // NetworkOptions: the wire cost model this Network enacts
#include "src/sim/simulator.h"

namespace bft {

// A network endpoint. The channel does not expose the sender's identity.
class NetPeer {
 public:
  virtual ~NetPeer() = default;
  virtual void Deliver(MsgBuffer message) = 0;
};

class Network {
 public:
  // Verdict of the Byzantine traffic filter installed by tests.
  enum class FilterAction { kDeliver, kDrop };
  using Filter = std::function<FilterAction(NodeId src, NodeId dst, const Bytes& msg)>;

  Network(Simulator* sim, NetworkOptions options) : sim_(sim), options_(options) {}

  void Register(NodeId id, NetPeer* peer, CpuMeter* cpu) {
    peers_[id] = peer;
    meters_[id] = cpu;
  }
  void Unregister(NodeId id) {
    peers_.erase(id);
    meters_.erase(id);
  }

  // Sends `msg` from `src` to `dst`. `departure` is the sender's CPU cursor at send time; the
  // caller (Node) supplies it so that CPU backlog delays departures.
  void Send(NodeId src, NodeId dst, MsgBuffer msg, SimTime departure);

  // IP-multicast: sender pays one send cost; each destination shares the same (refcounted)
  // encoded buffer but gets its own wire latency.
  void Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& msg,
                 SimTime departure);

  // --- Fault injection -------------------------------------------------------------------
  // Takes a node fully offline (both directions) / back online.
  void SetNodeDown(NodeId id, bool down);
  // Blocks one direction of a link.
  void SetLinkBlocked(NodeId src, NodeId dst, bool blocked);
  // Partitions the node set into {group} vs rest (bidirectional cut).
  void Partition(const std::set<NodeId>& group);
  void HealPartition();
  void SetDropProbability(double p) { options_.drop_probability = p; }
  void SetFilter(Filter filter) { filter_ = std::move(filter); }

  SimTime SendCpuCost(size_t bytes) const { return options_.SendCpuCost(bytes); }
  SimTime RecvCpuCost(size_t bytes) const { return options_.RecvCpuCost(bytes); }
  SimTime WireLatency(size_t bytes) const { return options_.WireLatency(bytes); }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  const NetworkOptions& options() const { return options_; }

 private:
  bool Blocked(NodeId src, NodeId dst) const;
  void DeliverOne(NodeId src, NodeId dst, MsgBuffer msg, SimTime departure);

  Simulator* sim_;
  NetworkOptions options_;
  std::map<NodeId, NetPeer*> peers_;
  std::map<NodeId, CpuMeter*> meters_;
  std::set<NodeId> down_nodes_;
  std::set<std::pair<NodeId, NodeId>> blocked_links_;
  std::set<NodeId> partition_group_;
  bool partitioned_ = false;
  Filter filter_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace bft

#endif  // SRC_SIM_NETWORK_H_

#include "src/sim/simulator.h"

namespace bft {

void Simulator::Cancel(EventId id) {
  auto it = id_index_.find(id);
  if (it == id_index_.end()) {
    return;
  }
  queue_.erase(std::make_pair(it->second, id));
  id_index_.erase(it);
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  auto it = queue_.begin();
  now_ = it->first.first;
  id_index_.erase(it->first.second);
  EventFn fn = std::move(it->second);
  queue_.erase(it);
  ++executed_;
  fn();
  return true;
}

size_t Simulator::RunUntil(SimTime deadline) {
  size_t count = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
    Step();
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

bool Simulator::RunUntilCondition(const std::function<bool()>& done, SimTime deadline) {
  while (!done()) {
    if (queue_.empty() || queue_.begin()->first.first > deadline) {
      return false;
    }
    Step();
  }
  return true;
}

size_t Simulator::RunAll(size_t max_events) {
  size_t count = 0;
  while (count < max_events && Step()) {
    ++count;
  }
  return count;
}

}  // namespace bft

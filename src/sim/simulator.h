// Deterministic discrete-event simulator.
//
// The BFT algorithm assumes an asynchronous distributed system; this simulator supplies the
// nodes, timers, and adversarially controllable scheduling. All time values are nanoseconds of
// simulated time. Every run is a pure function of the seed.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "src/common/rng.h"
#include "src/core/clock.h"

namespace bft {

class Simulator {
 public:
  using EventFn = std::function<void()>;
  using EventId = uint64_t;

  explicit Simulator(uint64_t seed) : rng_(seed) {}

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run `delay` ns from now. Events at equal times run in scheduling order.
  EventId Schedule(SimTime delay, EventFn fn) { return ScheduleAt(now_ + delay, std::move(fn)); }

  EventId ScheduleAt(SimTime when, EventFn fn) {
    EventId id = next_id_++;
    queue_.emplace(std::make_pair(when, id), std::move(fn));
    id_index_.emplace(id, when);
    return id;
  }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(EventId id);

  // Runs the next event. Returns false if the queue is empty.
  bool Step();

  // Runs all events with time <= deadline. Returns the number of events executed.
  size_t RunUntil(SimTime deadline);
  size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  // Runs until `done()` returns true or `deadline` passes or the queue empties.
  // Returns whether the condition was met.
  bool RunUntilCondition(const std::function<bool()>& done, SimTime deadline);

  // Drains the queue entirely (bounded by max_events as a runaway guard).
  size_t RunAll(size_t max_events = 50'000'000);

  bool Empty() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  // Keyed by (time, id): deterministic FIFO order among same-time events.
  std::map<std::pair<SimTime, EventId>, EventFn> queue_;
  std::map<EventId, SimTime> id_index_;  // for O(log n) Cancel
  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  Rng rng_;
};

}  // namespace bft

#endif  // SRC_SIM_SIMULATOR_H_

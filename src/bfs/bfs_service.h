// BFS: a Byzantine-fault-tolerant NFS-like file service (thesis Section 6.3).
//
// The entire file system lives in the replica's page-addressable state memory — superblock,
// inode table, block bitmap, and data blocks — so the BFT library's checkpointing, rollback,
// and state transfer machinery covers it directly, exactly as the paper's BFS kept its state
// in a memory-mapped region.
//
// The operation set mirrors NFS v2: LOOKUP, GETATTR, SETATTR(truncate), CREATE, MKDIR, READ,
// WRITE, REMOVE, RMDIR, RENAME, READDIR. Timestamps (mtime) come from the agreed
// non-deterministic value proposed by the primary (Section 5.4), never from local clocks.
#ifndef SRC_BFS_BFS_SERVICE_H_
#define SRC_BFS_BFS_SERVICE_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/common/serializer.h"
#include "src/service/service.h"

namespace bft {

// Status codes (a small subset of NFS errno values).
enum class BfsStatus : uint8_t {
  kOk = 0,
  kNoEnt = 2,
  kExist = 17,
  kNotDir = 20,
  kIsDir = 21,
  kInval = 22,
  kFBig = 27,
  kNoSpc = 28,
  kNotEmpty = 66,
};

struct BfsAttr {
  uint32_t ino = 0;
  uint8_t type = 0;  // 1 = file, 2 = directory, 3 = symlink
  uint32_t size = 0;
  uint64_t mtime = 0;
  uint16_t nlink = 0;
};

class BfsService : public Service {
 public:
  static constexpr uint32_t kRootIno = 0;
  static constexpr size_t kBlockSize = 1024;
  static constexpr size_t kDirectBlocks = 16;
  static constexpr size_t kMaxFileSize = kBlockSize * kDirectBlocks;
  static constexpr size_t kMaxName = 58;
  static constexpr size_t kInodeSize = 128;
  static constexpr size_t kDirEntrySize = 64;

  // --- Op builders (client side) --------------------------------------------------------------
  static Bytes LookupOp(uint32_t dir, std::string_view name);
  static Bytes GetAttrOp(uint32_t ino);
  static Bytes SetAttrOp(uint32_t ino, uint32_t new_size);
  static Bytes CreateOp(uint32_t dir, std::string_view name);
  static Bytes MkdirOp(uint32_t dir, std::string_view name);
  static Bytes ReadOp(uint32_t ino, uint32_t offset, uint32_t count);
  static Bytes WriteOp(uint32_t ino, uint32_t offset, ByteView data);
  static Bytes RemoveOp(uint32_t dir, std::string_view name);
  static Bytes RmdirOp(uint32_t dir, std::string_view name);
  static Bytes RenameOp(uint32_t sdir, std::string_view sname, uint32_t ddir,
                        std::string_view dname);
  static Bytes ReaddirOp(uint32_t dir);
  // Hard link: a second directory entry for an existing file inode.
  static Bytes LinkOp(uint32_t ino, uint32_t dir, std::string_view name);
  // Symbolic links: an inode (type 3) whose data is the target path string.
  static Bytes SymlinkOp(uint32_t dir, std::string_view name, std::string_view target);
  static Bytes ReadlinkOp(uint32_t ino);
  // File-system statistics (NFS STATFS): total/free blocks and inodes.
  static Bytes StatFsOp();

  struct BfsStatFs {
    uint32_t total_blocks = 0;
    uint32_t free_blocks = 0;
    uint32_t total_inodes = 0;
    uint32_t free_inodes = 0;
  };
  static std::optional<BfsStatFs> DecodeStatFs(ByteView result);

  // --- Result decoding --------------------------------------------------------------------------
  static BfsStatus StatusOf(ByteView result);
  static std::optional<BfsAttr> DecodeAttr(ByteView result);
  static Bytes DecodeData(ByteView result);  // READ payload
  static std::vector<std::pair<std::string, uint32_t>> DecodeDir(ByteView result);

  // --- Service interface ------------------------------------------------------------------------
  void Initialize(ReplicaState* state) override;
  Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) override;
  bool IsReadOnly(ByteView op) const override;
  Bytes ChooseNonDet(SeqNo seq, SimTime now) override;
  bool CheckNonDet(ByteView ndet, SimTime now) const override;
  SimTime ExecutionCost(ByteView op) const override;

  uint32_t max_inodes() const { return max_inodes_; }
  uint32_t max_blocks() const { return max_blocks_; }
  uint32_t free_blocks() const;

 private:
  struct Inode {
    uint8_t type = 0;  // 0 free, 1 file, 2 dir, 3 symlink
    uint16_t nlink = 0;
    uint32_t size = 0;
    uint64_t mtime = 0;
    uint32_t blocks[kDirectBlocks] = {0};  // block index + 1; 0 = unallocated
  };

  // Layout offsets within state memory.
  size_t InodeOffset(uint32_t ino) const;
  size_t BitmapOffset() const { return bitmap_offset_; }
  size_t BlockOffset(uint32_t block) const;

  Inode ReadInode(uint32_t ino) const;
  void WriteInode(uint32_t ino, const Inode& inode);
  std::optional<uint32_t> AllocInode(uint8_t type, uint64_t mtime);
  void FreeInode(uint32_t ino);
  std::optional<uint32_t> AllocBlock();
  void FreeBlock(uint32_t block);
  bool BlockUsed(uint32_t block) const;
  void SetBlockUsed(uint32_t block, bool used);

  // Directory helpers. Entries live in the directory inode's data blocks.
  std::optional<uint32_t> DirLookup(const Inode& dir, std::string_view name) const;
  bool DirInsert(uint32_t dir_ino, Inode* dir, std::string_view name, uint32_t ino,
                 uint64_t mtime);
  bool DirRemove(uint32_t dir_ino, Inode* dir, std::string_view name, uint64_t mtime);
  bool DirEmpty(const Inode& dir) const;
  std::vector<std::pair<std::string, uint32_t>> DirList(const Inode& dir) const;

  // File data helpers.
  Bytes FileRead(const Inode& inode, uint32_t offset, uint32_t count) const;
  BfsStatus FileWrite(uint32_t ino, Inode* inode, uint32_t offset, ByteView data,
                      uint64_t mtime);
  void FileTruncate(uint32_t ino, Inode* inode, uint32_t new_size, uint64_t mtime);

  BfsAttr AttrOf(uint32_t ino, const Inode& inode) const;
  static Bytes OkAttr(const BfsAttr& attr);
  static Bytes Err(BfsStatus status);

  ReplicaState* state_ = nullptr;
  uint32_t max_inodes_ = 0;
  uint32_t max_blocks_ = 0;
  size_t inode_offset_ = 0;
  size_t bitmap_offset_ = 0;
  size_t data_offset_ = 0;
};

}  // namespace bft

#endif  // SRC_BFS_BFS_SERVICE_H_

#include "src/bfs/bfs_service.h"

#include <cstring>

namespace bft {

namespace {
// Op verbs.
enum class BfsOp : uint8_t {
  kLookup = 1,
  kGetAttr = 2,
  kSetAttr = 3,
  kCreate = 4,
  kMkdir = 5,
  kRead = 6,
  kWrite = 7,
  kRemove = 8,
  kRmdir = 9,
  kRename = 10,
  kReaddir = 11,
  kLink = 12,
  kSymlink = 13,
  kReadlink = 14,
  kStatFs = 15,
};

void PutName(Writer& w, std::string_view name) { w.Str(name); }
}  // namespace

// --- Op builders ---------------------------------------------------------------------------------

Bytes BfsService::LookupOp(uint32_t dir, std::string_view name) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kLookup));
  w.U32(dir);
  PutName(w, name);
  return w.Take();
}

Bytes BfsService::GetAttrOp(uint32_t ino) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kGetAttr));
  w.U32(ino);
  return w.Take();
}

Bytes BfsService::SetAttrOp(uint32_t ino, uint32_t new_size) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kSetAttr));
  w.U32(ino);
  w.U32(new_size);
  return w.Take();
}

Bytes BfsService::CreateOp(uint32_t dir, std::string_view name) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kCreate));
  w.U32(dir);
  PutName(w, name);
  return w.Take();
}

Bytes BfsService::MkdirOp(uint32_t dir, std::string_view name) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kMkdir));
  w.U32(dir);
  PutName(w, name);
  return w.Take();
}

Bytes BfsService::ReadOp(uint32_t ino, uint32_t offset, uint32_t count) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kRead));
  w.U32(ino);
  w.U32(offset);
  w.U32(count);
  return w.Take();
}

Bytes BfsService::WriteOp(uint32_t ino, uint32_t offset, ByteView data) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kWrite));
  w.U32(ino);
  w.U32(offset);
  w.Var(data);
  return w.Take();
}

Bytes BfsService::RemoveOp(uint32_t dir, std::string_view name) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kRemove));
  w.U32(dir);
  PutName(w, name);
  return w.Take();
}

Bytes BfsService::RmdirOp(uint32_t dir, std::string_view name) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kRmdir));
  w.U32(dir);
  PutName(w, name);
  return w.Take();
}

Bytes BfsService::RenameOp(uint32_t sdir, std::string_view sname, uint32_t ddir,
                           std::string_view dname) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kRename));
  w.U32(sdir);
  PutName(w, sname);
  w.U32(ddir);
  PutName(w, dname);
  return w.Take();
}

Bytes BfsService::ReaddirOp(uint32_t dir) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kReaddir));
  w.U32(dir);
  return w.Take();
}

Bytes BfsService::LinkOp(uint32_t ino, uint32_t dir, std::string_view name) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kLink));
  w.U32(ino);
  w.U32(dir);
  PutName(w, name);
  return w.Take();
}

Bytes BfsService::SymlinkOp(uint32_t dir, std::string_view name, std::string_view target) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kSymlink));
  w.U32(dir);
  PutName(w, name);
  w.Str(target);
  return w.Take();
}

Bytes BfsService::ReadlinkOp(uint32_t ino) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kReadlink));
  w.U32(ino);
  return w.Take();
}

Bytes BfsService::StatFsOp() {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsOp::kStatFs));
  return w.Take();
}

std::optional<BfsService::BfsStatFs> BfsService::DecodeStatFs(ByteView result) {
  Reader r(result);
  if (static_cast<BfsStatus>(r.U8()) != BfsStatus::kOk) {
    return std::nullopt;
  }
  BfsStatFs out;
  out.total_blocks = r.U32();
  out.free_blocks = r.U32();
  out.total_inodes = r.U32();
  out.free_inodes = r.U32();
  if (!r.ok()) {
    return std::nullopt;
  }
  return out;
}

// --- Result decoding -------------------------------------------------------------------------------

BfsStatus BfsService::StatusOf(ByteView result) {
  if (result.empty()) {
    return BfsStatus::kInval;
  }
  return static_cast<BfsStatus>(result[0]);
}

std::optional<BfsAttr> BfsService::DecodeAttr(ByteView result) {
  Reader r(result);
  if (static_cast<BfsStatus>(r.U8()) != BfsStatus::kOk) {
    return std::nullopt;
  }
  BfsAttr attr;
  attr.ino = r.U32();
  attr.type = r.U8();
  attr.size = r.U32();
  attr.mtime = r.U64();
  attr.nlink = r.U16();
  if (!r.ok()) {
    return std::nullopt;
  }
  return attr;
}

Bytes BfsService::DecodeData(ByteView result) {
  Reader r(result);
  if (static_cast<BfsStatus>(r.U8()) != BfsStatus::kOk) {
    return {};
  }
  return r.Var();
}

std::vector<std::pair<std::string, uint32_t>> BfsService::DecodeDir(ByteView result) {
  std::vector<std::pair<std::string, uint32_t>> out;
  Reader r(result);
  if (static_cast<BfsStatus>(r.U8()) != BfsStatus::kOk) {
    return out;
  }
  uint32_t count = r.U32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string name = r.Str();
    uint32_t ino = r.U32();
    out.emplace_back(std::move(name), ino);
  }
  return out;
}

Bytes BfsService::OkAttr(const BfsAttr& attr) {
  Writer w;
  w.U8(static_cast<uint8_t>(BfsStatus::kOk));
  w.U32(attr.ino);
  w.U8(attr.type);
  w.U32(attr.size);
  w.U64(attr.mtime);
  w.U16(attr.nlink);
  return w.Take();
}

Bytes BfsService::Err(BfsStatus status) {
  Writer w;
  w.U8(static_cast<uint8_t>(status));
  return w.Take();
}

// --- Layout & low-level accessors --------------------------------------------------------------------

void BfsService::Initialize(ReplicaState* state) {
  state_ = state;
  // Carve the state memory: 1/8 inodes, a bitmap region, the rest data blocks.
  size_t total = state->size_bytes();
  max_inodes_ = static_cast<uint32_t>(total / 8 / kInodeSize);
  if (max_inodes_ < 16) {
    max_inodes_ = 16;
  }
  inode_offset_ = 64;  // small superblock gap
  bitmap_offset_ = inode_offset_ + static_cast<size_t>(max_inodes_) * kInodeSize;
  size_t remaining = total - bitmap_offset_;
  // Each block costs kBlockSize bytes of data + 1 bit of bitmap.
  max_blocks_ = static_cast<uint32_t>(remaining * 8 / (8 * kBlockSize + 1));
  data_offset_ = bitmap_offset_ + (max_blocks_ + 7) / 8;

  // Root directory.
  Inode root;
  root.type = 2;
  root.nlink = 2;
  root.size = 0;
  root.mtime = 0;
  WriteInode(kRootIno, root);
}

size_t BfsService::InodeOffset(uint32_t ino) const {
  return inode_offset_ + static_cast<size_t>(ino) * kInodeSize;
}

size_t BfsService::BlockOffset(uint32_t block) const {
  return data_offset_ + static_cast<size_t>(block) * kBlockSize;
}

BfsService::Inode BfsService::ReadInode(uint32_t ino) const {
  Inode inode;
  uint8_t buf[kInodeSize];
  state_->Read(InodeOffset(ino), kInodeSize, buf);
  Reader r(ByteView(buf, kInodeSize));
  inode.type = r.U8();
  inode.nlink = r.U16();
  inode.size = r.U32();
  inode.mtime = r.U64();
  for (auto& b : inode.blocks) {
    b = r.U32();
  }
  return inode;
}

void BfsService::WriteInode(uint32_t ino, const Inode& inode) {
  Writer w;
  w.U8(inode.type);
  w.U16(inode.nlink);
  w.U32(inode.size);
  w.U64(inode.mtime);
  for (uint32_t b : inode.blocks) {
    w.U32(b);
  }
  Bytes buf = w.Take();
  buf.resize(kInodeSize, 0);
  state_->Write(InodeOffset(ino), buf);
}

std::optional<uint32_t> BfsService::AllocInode(uint8_t type, uint64_t mtime) {
  for (uint32_t ino = 1; ino < max_inodes_; ++ino) {
    Inode inode = ReadInode(ino);
    if (inode.type == 0) {
      Inode fresh;
      fresh.type = type;
      fresh.nlink = type == 2 ? 2 : 1;
      fresh.mtime = mtime;
      WriteInode(ino, fresh);
      return ino;
    }
  }
  return std::nullopt;
}

void BfsService::FreeInode(uint32_t ino) {
  Inode inode = ReadInode(ino);
  for (uint32_t b : inode.blocks) {
    if (b != 0) {
      FreeBlock(b - 1);
    }
  }
  WriteInode(ino, Inode{});
}

bool BfsService::BlockUsed(uint32_t block) const {
  uint8_t byte = 0;
  state_->Read(bitmap_offset_ + block / 8, 1, &byte);
  return ((byte >> (block % 8)) & 1) != 0;
}

void BfsService::SetBlockUsed(uint32_t block, bool used) {
  uint8_t byte = 0;
  state_->Read(bitmap_offset_ + block / 8, 1, &byte);
  if (used) {
    byte |= static_cast<uint8_t>(1u << (block % 8));
  } else {
    byte &= static_cast<uint8_t>(~(1u << (block % 8)));
  }
  state_->Write(bitmap_offset_ + block / 8, ByteView(&byte, 1));
}

std::optional<uint32_t> BfsService::AllocBlock() {
  for (uint32_t b = 0; b < max_blocks_; ++b) {
    if (!BlockUsed(b)) {
      SetBlockUsed(b, true);
      Bytes zero(kBlockSize, 0);
      state_->Write(BlockOffset(b), zero);
      return b;
    }
  }
  return std::nullopt;
}

void BfsService::FreeBlock(uint32_t block) { SetBlockUsed(block, false); }

uint32_t BfsService::free_blocks() const {
  uint32_t count = 0;
  for (uint32_t b = 0; b < max_blocks_; ++b) {
    if (!BlockUsed(b)) {
      ++count;
    }
  }
  return count;
}

// --- Directories ---------------------------------------------------------------------------------------

std::optional<uint32_t> BfsService::DirLookup(const Inode& dir, std::string_view name) const {
  uint8_t entry[kDirEntrySize];
  for (uint32_t pos = 0; pos < dir.size; pos += kDirEntrySize) {
    uint32_t block = dir.blocks[pos / kBlockSize];
    if (block == 0) {
      continue;
    }
    state_->Read(BlockOffset(block - 1) + pos % kBlockSize, kDirEntrySize, entry);
    if (entry[0] == 0) {
      continue;
    }
    size_t len = entry[1];
    if (len == name.size() && std::memcmp(entry + 2, name.data(), len) == 0) {
      uint32_t ino;
      std::memcpy(&ino, entry + 2 + kMaxName, sizeof(ino));
      return ino;
    }
  }
  return std::nullopt;
}

bool BfsService::DirInsert(uint32_t dir_ino, Inode* dir, std::string_view name, uint32_t ino,
                           uint64_t mtime) {
  if (name.empty() || name.size() > kMaxName) {
    return false;
  }
  // Find a free entry slot (a hole or the end).
  uint32_t pos = 0;
  uint8_t entry[kDirEntrySize];
  for (; pos < dir->size; pos += kDirEntrySize) {
    uint32_t block = dir->blocks[pos / kBlockSize];
    if (block == 0) {
      break;
    }
    state_->Read(BlockOffset(block - 1) + pos % kBlockSize, kDirEntrySize, entry);
    if (entry[0] == 0) {
      break;
    }
  }
  if (pos + kDirEntrySize > kMaxFileSize) {
    return false;
  }
  size_t block_index = pos / kBlockSize;
  if (dir->blocks[block_index] == 0) {
    std::optional<uint32_t> b = AllocBlock();
    if (!b.has_value()) {
      return false;
    }
    dir->blocks[block_index] = *b + 1;
  }
  std::memset(entry, 0, sizeof(entry));
  entry[0] = 1;
  entry[1] = static_cast<uint8_t>(name.size());
  std::memcpy(entry + 2, name.data(), name.size());
  std::memcpy(entry + 2 + kMaxName, &ino, sizeof(ino));
  state_->Write(BlockOffset(dir->blocks[block_index] - 1) + pos % kBlockSize,
                ByteView(entry, kDirEntrySize));
  if (pos + kDirEntrySize > dir->size) {
    dir->size = pos + kDirEntrySize;
  }
  dir->mtime = mtime;
  WriteInode(dir_ino, *dir);
  return true;
}

bool BfsService::DirRemove(uint32_t dir_ino, Inode* dir, std::string_view name,
                           uint64_t mtime) {
  uint8_t entry[kDirEntrySize];
  for (uint32_t pos = 0; pos < dir->size; pos += kDirEntrySize) {
    uint32_t block = dir->blocks[pos / kBlockSize];
    if (block == 0) {
      continue;
    }
    state_->Read(BlockOffset(block - 1) + pos % kBlockSize, kDirEntrySize, entry);
    if (entry[0] == 0) {
      continue;
    }
    size_t len = entry[1];
    if (len == name.size() && std::memcmp(entry + 2, name.data(), len) == 0) {
      uint8_t zero[kDirEntrySize] = {0};
      state_->Write(BlockOffset(block - 1) + pos % kBlockSize, ByteView(zero, kDirEntrySize));
      dir->mtime = mtime;
      WriteInode(dir_ino, *dir);
      return true;
    }
  }
  return false;
}

bool BfsService::DirEmpty(const Inode& dir) const {
  uint8_t used = 0;
  for (uint32_t pos = 0; pos < dir.size; pos += kDirEntrySize) {
    uint32_t block = dir.blocks[pos / kBlockSize];
    if (block == 0) {
      continue;
    }
    state_->Read(BlockOffset(block - 1) + pos % kBlockSize, 1, &used);
    if (used != 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<std::string, uint32_t>> BfsService::DirList(const Inode& dir) const {
  std::vector<std::pair<std::string, uint32_t>> out;
  uint8_t entry[kDirEntrySize];
  for (uint32_t pos = 0; pos < dir.size; pos += kDirEntrySize) {
    uint32_t block = dir.blocks[pos / kBlockSize];
    if (block == 0) {
      continue;
    }
    state_->Read(BlockOffset(block - 1) + pos % kBlockSize, kDirEntrySize, entry);
    if (entry[0] == 0) {
      continue;
    }
    uint32_t ino;
    std::memcpy(&ino, entry + 2 + kMaxName, sizeof(ino));
    out.emplace_back(std::string(reinterpret_cast<char*>(entry + 2), entry[1]), ino);
  }
  return out;
}

// --- File data -------------------------------------------------------------------------------------------

Bytes BfsService::FileRead(const Inode& inode, uint32_t offset, uint32_t count) const {
  if (offset >= inode.size) {
    return {};
  }
  count = std::min(count, inode.size - offset);
  Bytes out(count, 0);
  uint32_t done = 0;
  while (done < count) {
    uint32_t pos = offset + done;
    uint32_t block = inode.blocks[pos / kBlockSize];
    uint32_t in_block = pos % kBlockSize;
    uint32_t chunk = std::min<uint32_t>(count - done, kBlockSize - in_block);
    if (block != 0) {
      state_->Read(BlockOffset(block - 1) + in_block, chunk, out.data() + done);
    }
    done += chunk;
  }
  return out;
}

BfsStatus BfsService::FileWrite(uint32_t ino, Inode* inode, uint32_t offset, ByteView data,
                                uint64_t mtime) {
  if (static_cast<size_t>(offset) + data.size() > kMaxFileSize) {
    return BfsStatus::kFBig;
  }
  uint32_t done = 0;
  while (done < data.size()) {
    uint32_t pos = offset + done;
    size_t block_index = pos / kBlockSize;
    if (inode->blocks[block_index] == 0) {
      std::optional<uint32_t> b = AllocBlock();
      if (!b.has_value()) {
        return BfsStatus::kNoSpc;
      }
      inode->blocks[block_index] = *b + 1;
    }
    uint32_t in_block = pos % kBlockSize;
    uint32_t chunk =
        std::min<uint32_t>(static_cast<uint32_t>(data.size()) - done, kBlockSize - in_block);
    state_->Write(BlockOffset(inode->blocks[block_index] - 1) + in_block,
                  data.subspan(done, chunk));
    done += chunk;
  }
  inode->size = std::max<uint32_t>(inode->size, offset + static_cast<uint32_t>(data.size()));
  inode->mtime = mtime;
  WriteInode(ino, *inode);
  return BfsStatus::kOk;
}

void BfsService::FileTruncate(uint32_t ino, Inode* inode, uint32_t new_size, uint64_t mtime) {
  if (new_size > kMaxFileSize) {
    new_size = kMaxFileSize;
  }
  // Free whole blocks beyond the new size.
  size_t keep_blocks = (new_size + kBlockSize - 1) / kBlockSize;
  for (size_t i = keep_blocks; i < kDirectBlocks; ++i) {
    if (inode->blocks[i] != 0) {
      FreeBlock(inode->blocks[i] - 1);
      inode->blocks[i] = 0;
    }
  }
  inode->size = new_size;
  inode->mtime = mtime;
  WriteInode(ino, *inode);
}

BfsAttr BfsService::AttrOf(uint32_t ino, const Inode& inode) const {
  BfsAttr attr;
  attr.ino = ino;
  attr.type = inode.type;
  attr.size = inode.size;
  attr.mtime = inode.mtime;
  attr.nlink = inode.nlink;
  return attr;
}

// --- Non-determinism (Section 5.4) --------------------------------------------------------------------------

Bytes BfsService::ChooseNonDet(SeqNo seq, SimTime now) {
  Writer w;
  w.U64(now);  // the primary proposes its clock as the batch's mtime
  return w.Take();
}

bool BfsService::CheckNonDet(ByteView ndet, SimTime now) const {
  Reader r(ndet);
  uint64_t t = r.U64();
  if (!r.ok()) {
    return false;
  }
  // Accept the proposal if it is within a generous window of the local clock; a primary that
  // proposes wild values is replaced by a view change.
  constexpr uint64_t kWindow = 10ull * kSecond;
  uint64_t local = now;
  return t + kWindow >= local && t <= local + kWindow;
}

SimTime BfsService::ExecutionCost(ByteView op) const {
  // An in-memory file operation: a few microseconds, plus copy cost for payload bytes.
  return 4 * kMicrosecond + op.size() / 2;
}

// --- Dispatch --------------------------------------------------------------------------------------------------

bool BfsService::IsReadOnly(ByteView op) const {
  if (op.empty()) {
    return false;
  }
  switch (static_cast<BfsOp>(op[0])) {
    case BfsOp::kLookup:
    case BfsOp::kGetAttr:
    case BfsOp::kRead:
    case BfsOp::kReaddir:
    case BfsOp::kReadlink:
    case BfsOp::kStatFs:
      return true;
    default:
      return false;
  }
}

Bytes BfsService::Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) {
  Reader r(op);
  BfsOp verb = static_cast<BfsOp>(r.U8());
  Reader nr(ndet);
  uint64_t mtime = nr.U64();  // 0 if absent (read-only path)

  switch (verb) {
    case BfsOp::kLookup: {
      uint32_t dir = r.U32();
      std::string name = r.Str();
      if (!r.ok() || dir >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode d = ReadInode(dir);
      if (d.type != 2) {
        return Err(BfsStatus::kNotDir);
      }
      std::optional<uint32_t> ino = DirLookup(d, name);
      if (!ino.has_value()) {
        return Err(BfsStatus::kNoEnt);
      }
      return OkAttr(AttrOf(*ino, ReadInode(*ino)));
    }
    case BfsOp::kGetAttr: {
      uint32_t ino = r.U32();
      if (!r.ok() || ino >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode inode = ReadInode(ino);
      if (inode.type == 0) {
        return Err(BfsStatus::kNoEnt);
      }
      return OkAttr(AttrOf(ino, inode));
    }
    case BfsOp::kSetAttr: {
      uint32_t ino = r.U32();
      uint32_t new_size = r.U32();
      if (!r.ok() || ino >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode inode = ReadInode(ino);
      if (inode.type != 1) {
        return Err(inode.type == 2 ? BfsStatus::kIsDir : BfsStatus::kNoEnt);
      }
      FileTruncate(ino, &inode, new_size, mtime);
      return OkAttr(AttrOf(ino, inode));
    }
    case BfsOp::kCreate:
    case BfsOp::kMkdir: {
      uint32_t dir = r.U32();
      std::string name = r.Str();
      if (!r.ok() || dir >= max_inodes_ || name.empty() || name.size() > kMaxName) {
        return Err(BfsStatus::kInval);
      }
      Inode d = ReadInode(dir);
      if (d.type != 2) {
        return Err(BfsStatus::kNotDir);
      }
      if (DirLookup(d, name).has_value()) {
        return Err(BfsStatus::kExist);
      }
      uint8_t type = verb == BfsOp::kMkdir ? 2 : 1;
      std::optional<uint32_t> ino = AllocInode(type, mtime);
      if (!ino.has_value()) {
        return Err(BfsStatus::kNoSpc);
      }
      if (!DirInsert(dir, &d, name, *ino, mtime)) {
        FreeInode(*ino);
        return Err(BfsStatus::kNoSpc);
      }
      return OkAttr(AttrOf(*ino, ReadInode(*ino)));
    }
    case BfsOp::kRead: {
      uint32_t ino = r.U32();
      uint32_t offset = r.U32();
      uint32_t count = r.U32();
      if (!r.ok() || ino >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode inode = ReadInode(ino);
      if (inode.type != 1) {
        return Err(inode.type == 2 ? BfsStatus::kIsDir : BfsStatus::kNoEnt);
      }
      Writer w;
      w.U8(static_cast<uint8_t>(BfsStatus::kOk));
      w.Var(FileRead(inode, offset, count));
      return w.Take();
    }
    case BfsOp::kWrite: {
      uint32_t ino = r.U32();
      uint32_t offset = r.U32();
      Bytes data = r.Var();
      if (!r.ok() || ino >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode inode = ReadInode(ino);
      if (inode.type != 1) {
        return Err(inode.type == 2 ? BfsStatus::kIsDir : BfsStatus::kNoEnt);
      }
      BfsStatus status = FileWrite(ino, &inode, offset, data, mtime);
      if (status != BfsStatus::kOk) {
        return Err(status);
      }
      return OkAttr(AttrOf(ino, inode));
    }
    case BfsOp::kRemove:
    case BfsOp::kRmdir: {
      uint32_t dir = r.U32();
      std::string name = r.Str();
      if (!r.ok() || dir >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode d = ReadInode(dir);
      if (d.type != 2) {
        return Err(BfsStatus::kNotDir);
      }
      std::optional<uint32_t> ino = DirLookup(d, name);
      if (!ino.has_value()) {
        return Err(BfsStatus::kNoEnt);
      }
      Inode target = ReadInode(*ino);
      if (verb == BfsOp::kRmdir) {
        if (target.type != 2) {
          return Err(BfsStatus::kNotDir);
        }
        if (!DirEmpty(target)) {
          return Err(BfsStatus::kNotEmpty);
        }
      } else if (target.type == 2) {
        return Err(BfsStatus::kIsDir);
      }
      DirRemove(dir, &d, name, mtime);
      // Hard links: the inode is freed only when its last name goes away.
      if (verb != BfsOp::kRmdir && target.nlink > 1) {
        --target.nlink;
        target.mtime = mtime;
        WriteInode(*ino, target);
      } else {
        FreeInode(*ino);
      }
      Writer w;
      w.U8(static_cast<uint8_t>(BfsStatus::kOk));
      return w.Take();
    }
    case BfsOp::kRename: {
      uint32_t sdir = r.U32();
      std::string sname = r.Str();
      uint32_t ddir = r.U32();
      std::string dname = r.Str();
      if (!r.ok() || sdir >= max_inodes_ || ddir >= max_inodes_ || dname.empty() ||
          dname.size() > kMaxName) {
        return Err(BfsStatus::kInval);
      }
      Inode sd = ReadInode(sdir);
      Inode dd = sdir == ddir ? sd : ReadInode(ddir);
      if (sd.type != 2 || dd.type != 2) {
        return Err(BfsStatus::kNotDir);
      }
      std::optional<uint32_t> ino = DirLookup(sd, sname);
      if (!ino.has_value()) {
        return Err(BfsStatus::kNoEnt);
      }
      if (DirLookup(dd, dname).has_value()) {
        return Err(BfsStatus::kExist);
      }
      DirRemove(sdir, &sd, sname, mtime);
      if (sdir == ddir) {
        dd = ReadInode(ddir);  // refresh after removal
      }
      if (!DirInsert(ddir, &dd, dname, *ino, mtime)) {
        // Roll the entry back into the source directory; deterministic on all replicas.
        Inode sd2 = ReadInode(sdir);
        DirInsert(sdir, &sd2, sname, *ino, mtime);
        return Err(BfsStatus::kNoSpc);
      }
      Writer w;
      w.U8(static_cast<uint8_t>(BfsStatus::kOk));
      return w.Take();
    }
    case BfsOp::kReaddir: {
      uint32_t dir = r.U32();
      if (!r.ok() || dir >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode d = ReadInode(dir);
      if (d.type != 2) {
        return Err(BfsStatus::kNotDir);
      }
      auto entries = DirList(d);
      Writer w;
      w.U8(static_cast<uint8_t>(BfsStatus::kOk));
      w.U32(static_cast<uint32_t>(entries.size()));
      for (const auto& [name, ino] : entries) {
        w.Str(name);
        w.U32(ino);
      }
      return w.Take();
    }
    case BfsOp::kLink: {
      uint32_t ino = r.U32();
      uint32_t dir = r.U32();
      std::string name = r.Str();
      if (!r.ok() || ino >= max_inodes_ || dir >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode target = ReadInode(ino);
      if (target.type != 1) {
        return Err(target.type == 2 ? BfsStatus::kIsDir : BfsStatus::kNoEnt);
      }
      Inode d = ReadInode(dir);
      if (d.type != 2) {
        return Err(BfsStatus::kNotDir);
      }
      if (DirLookup(d, name).has_value()) {
        return Err(BfsStatus::kExist);
      }
      if (!DirInsert(dir, &d, name, ino, mtime)) {
        return Err(BfsStatus::kNoSpc);
      }
      ++target.nlink;
      target.mtime = mtime;
      WriteInode(ino, target);
      return OkAttr(AttrOf(ino, target));
    }
    case BfsOp::kSymlink: {
      uint32_t dir = r.U32();
      std::string name = r.Str();
      std::string link_target = r.Str();
      if (!r.ok() || dir >= max_inodes_ || name.empty() || name.size() > kMaxName ||
          link_target.empty() || link_target.size() > kBlockSize) {
        return Err(BfsStatus::kInval);
      }
      Inode d = ReadInode(dir);
      if (d.type != 2) {
        return Err(BfsStatus::kNotDir);
      }
      if (DirLookup(d, name).has_value()) {
        return Err(BfsStatus::kExist);
      }
      std::optional<uint32_t> ino = AllocInode(3, mtime);
      if (!ino.has_value()) {
        return Err(BfsStatus::kNoSpc);
      }
      Inode link = ReadInode(*ino);
      BfsStatus status = FileWrite(*ino, &link, 0, ToBytes(link_target), mtime);
      if (status != BfsStatus::kOk || !DirInsert(dir, &d, name, *ino, mtime)) {
        FreeInode(*ino);
        return Err(BfsStatus::kNoSpc);
      }
      return OkAttr(AttrOf(*ino, ReadInode(*ino)));
    }
    case BfsOp::kReadlink: {
      uint32_t ino = r.U32();
      if (!r.ok() || ino >= max_inodes_) {
        return Err(BfsStatus::kInval);
      }
      Inode link = ReadInode(ino);
      if (link.type != 3) {
        return Err(BfsStatus::kInval);
      }
      Writer w;
      w.U8(static_cast<uint8_t>(BfsStatus::kOk));
      w.Var(FileRead(link, 0, link.size));
      return w.Take();
    }
    case BfsOp::kStatFs: {
      uint32_t free_inode_count = 0;
      for (uint32_t i = 0; i < max_inodes_; ++i) {
        if (ReadInode(i).type == 0) {
          ++free_inode_count;
        }
      }
      Writer w;
      w.U8(static_cast<uint8_t>(BfsStatus::kOk));
      w.U32(max_blocks_);
      w.U32(free_blocks());
      w.U32(max_inodes_);
      w.U32(free_inode_count);
      return w.Take();
    }
    default:
      return Err(BfsStatus::kInval);
  }
}

}  // namespace bft

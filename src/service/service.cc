#include "src/service/service.h"

#include <algorithm>

#include "src/common/serializer.h"

namespace bft {

namespace {
// Starts with NUL so no printable result ("ok", "full", values in tests) collides by
// accident; the trailing NUL guards against prefix-extension lookalikes.
constexpr uint8_t kStaleOwnerMarker[] = {0x00, '!', 's', 't', 'a', 'l', 'e', '-',
                                         'o', 'w', 'n', 'e', 'r', 0x00};
}  // namespace

ByteView Service::StaleOwnerResult() { return ByteView(kStaleOwnerMarker, sizeof(kStaleOwnerMarker)); }

bool Service::IsStaleOwnerResult(ByteView result) { return Equal(result, StaleOwnerResult()); }

namespace {
constexpr char kAccessDenied[] = "denied: admin-only op";
}  // namespace

ByteView Service::AccessDeniedResult() {
  return ByteView(reinterpret_cast<const uint8_t*>(kAccessDenied), sizeof(kAccessDenied) - 1);
}

bool Service::IsAccessDeniedResult(ByteView result) {
  return Equal(result, AccessDeniedResult());
}

std::optional<std::vector<std::pair<Bytes, Bytes>>> Service::ParseExportedEntries(
    ByteView blob) {
  Reader r(blob);
  uint32_t count = r.U32();
  std::vector<std::pair<Bytes, Bytes>> entries;
  // The count is untrusted: bound the reservation by what the blob could possibly hold
  // (every entry carries at least two u32 length prefixes), so a forged count cannot force
  // a huge allocation before the per-entry checks reject the blob.
  entries.reserve(std::min<size_t>(count, r.remaining() / 8));
  for (uint32_t i = 0; i < count; ++i) {
    Bytes key = r.Var();
    Bytes value = r.Var();
    if (!r.ok()) {
      return std::nullopt;
    }
    entries.emplace_back(std::move(key), std::move(value));
  }
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return entries;
}

}  // namespace bft

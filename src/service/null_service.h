// Micro-benchmark service: the paper's a/b operations (argument of a KB, result of b KB) with
// no real computation. Used by the latency/throughput benches (operations 0/0, 4/0, 0/4).
//
// Wire format of an op:
//   [u8 read_only_flag][u32 result_size][arg payload ...]
#ifndef SRC_SERVICE_NULL_SERVICE_H_
#define SRC_SERVICE_NULL_SERVICE_H_

#include "src/common/serializer.h"
#include "src/service/service.h"

namespace bft {

class NullService : public Service {
 public:
  // If `touch_state` is set, each (read-write) execution increments a counter in page 0 so the
  // checkpointing machinery sees dirty state, as a real service would.
  explicit NullService(bool touch_state = true) : touch_state_(touch_state) {}

  static Bytes MakeOp(bool read_only, size_t arg_size, size_t result_size) {
    Writer w;
    w.U8(read_only ? 1 : 0);
    w.U32(static_cast<uint32_t>(result_size));
    w.Raw(Bytes(arg_size, 0xab));
    return w.Take();
  }

  void Initialize(ReplicaState* state) override { state_ = state; }

  Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) override {
    Reader r(op);
    r.U8();
    uint32_t result_size = r.U32();
    if (!r.ok()) {
      return {};
    }
    if (!read_only && touch_state_ && state_ != nullptr) {
      uint64_t counter = 0;
      state_->Read(0, sizeof(counter), reinterpret_cast<uint8_t*>(&counter));
      ++counter;
      state_->Write(0, ByteView(reinterpret_cast<const uint8_t*>(&counter), sizeof(counter)));
    }
    return Bytes(result_size, 0xcd);
  }

  bool IsReadOnly(ByteView op) const override { return !op.empty() && op[0] == 1; }

  SimTime ExecutionCost(ByteView op) const override { return kMicrosecond; }

 private:
  bool touch_state_;
  ReplicaState* state_ = nullptr;
};

}  // namespace bft

#endif  // SRC_SERVICE_NULL_SERVICE_H_

// Replicated key-value store over the page-addressable state memory.
//
// A fixed-capacity open-addressing hash table: every slot is 256 bytes laid out directly in
// ReplicaState pages, so checkpointing, rollback, and state transfer cover the store without
// any serialization step. Deletes use tombstones so probe chains stay deterministic.
//
// Ops (all length-delimited via Writer/Reader):
//   PUT key value  -> "ok" | "full"
//   GET key        -> value | ""        (read-only)
//   DEL key        -> "ok" | "miss"
//
// The store supports live bucket migration (the Service migration upcalls): the first
// kMovedBitmapBytes of state memory are a moved-out bitmap over the canonical key ring
// (common/key_ring.h). Data ops whose key falls in a moved-out bucket return the stale-owner
// marker instead of executing; the MIG_* ops below maintain the bitmap and move entries:
//   MIG_SEAL bucket     -> "ok"              (set moved-out bit)
//   MIG_ACCEPT bucket   -> "ok"              (destination side: tombstone any stale local
//                                             entries for the bucket, then clear the bit —
//                                             leftovers of an aborted earlier move must not
//                                             shadow the fresh import set)
//   MIG_UNSEAL bucket   -> "ok"              (clear moved-out bit only; rollback un-seals
//                                             the source, whose data is live)
//   MIG_EXPORT bucket   -> exported entries  (Service::ParseExportedEntries format,
//                                             slot-order deterministic)
//   MIG_IMPORT key val  -> "ok" | "full"     (install one exported entry)
//   MIG_PURGE bucket    -> "ok"              (tombstone the bucket's entries)
// The bitmap lives in ReplicaState pages like every other byte of service state, so the
// moved markers checkpoint, roll back, and state-transfer exactly like the data they guard.
//
// Rebalance introspection (admin, ordered like any op):
//   REB_STATS bucket    -> [count u32][bytes u64]  (live entries and resident payload bytes
//                                                   of one ring bucket, from replicated state
//                                                   — the authoritative cross-check for the
//                                                   harness-side BucketStatsRegistry)
// All MIG_* and REB_* verbs are admin ops (IsAdminOp): replicas reject them from clients
// outside ReplicaConfig's admin id range before execution.
#ifndef SRC_SERVICE_KV_SERVICE_H_
#define SRC_SERVICE_KV_SERVICE_H_

#include <optional>
#include <string>

#include "src/common/key_ring.h"
#include "src/common/serializer.h"
#include "src/service/service.h"

namespace bft {

class KvService : public Service {
 public:
  static constexpr size_t kSlotSize = 256;
  static constexpr size_t kMaxKey = 60;
  static constexpr size_t kMaxValue = 188;
  // Moved-out bitmap: one bit per ring bucket, at the front of state memory.
  static constexpr size_t kMovedBitmapBytes = KeyRing::kNumBuckets / 8;

  static Bytes PutOp(ByteView key, ByteView value);
  static Bytes GetOp(ByteView key);
  static Bytes DelOp(ByteView key);
  static Bytes BucketStatsOp(uint32_t bucket);  // REB_STATS (admin)

  void Initialize(ReplicaState* state) override;

  Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) override;
  bool IsReadOnly(ByteView op) const override;
  std::optional<Bytes> KeyOf(ByteView op) const override;
  bool IsAdminOp(ByteView op) const override;
  SimTime ExecutionCost(ByteView op) const override { return 3 * kMicrosecond; }

  // Migration upcalls (see Service): blobs are raw values.
  std::optional<Bytes> SealBucketOp(uint32_t bucket) const override;
  std::optional<Bytes> ExportBucketOp(uint32_t bucket) const override;
  std::optional<Bytes> AcceptBucketOp(uint32_t bucket) const override;
  std::optional<Bytes> UnsealBucketOp(uint32_t bucket) const override;
  std::optional<Bytes> ImportEntryOp(ByteView key, ByteView blob) const override;
  std::optional<Bytes> PurgeBucketOp(uint32_t bucket) const override;
  std::vector<Bytes> EnumerateBucket(uint32_t bucket) const override;
  std::optional<Bytes> ExportEntry(ByteView key) const override;

  size_t capacity() const { return capacity_; }
  size_t live_entries() const;
  bool BucketMovedOut(uint32_t bucket) const;

 private:
  struct SlotRef {
    size_t offset;  // byte offset of the slot in state memory
  };

  // Slot header layout: [state u8][klen u8][vlen u16][key kMaxKey][value kMaxValue].
  enum SlotState : uint8_t { kEmpty = 0, kUsed = 1, kTombstone = 2 };

  size_t SlotOffset(size_t slot) const { return kMovedBitmapBytes + slot * kSlotSize; }
  uint8_t SlotStateAt(size_t slot) const;
  Bytes SlotKey(size_t slot) const;
  Bytes SlotValue(size_t slot) const;
  void WriteSlot(size_t slot, uint8_t state, ByteView key, ByteView value);
  void SetBucketMoved(uint32_t bucket, bool moved);

  // Invokes fn(slot, key) for every kUsed slot whose key falls in `bucket`, in slot order —
  // the one definition of bucket membership shared by export, purge, and enumerate, so the
  // three can never drift apart (purge must remove exactly what export captured).
  template <typename Fn>
  void ForEachUsedSlotInBucket(uint32_t bucket, Fn fn) const {
    for (size_t slot = 0; slot < capacity_; ++slot) {
      if (SlotStateAt(slot) != kUsed) {
        continue;
      }
      Bytes key = SlotKey(slot);
      if (KeyRing::BucketForKey(key) == bucket) {
        fn(slot, std::move(key));
      }
    }
  }

  // Returns the slot holding `key`, or the first insertable slot, or nullopt if full.
  std::optional<size_t> FindSlot(ByteView key, bool for_insert) const;

  // `resident_delta`, when non-null, receives the change in stored key+value payload bytes
  // the op caused (the stats sink's size signal).
  Bytes DoPut(ByteView key, ByteView value, int64_t* resident_delta = nullptr);
  Bytes DoGet(ByteView key) const;
  Bytes DoDel(ByteView key, int64_t* resident_delta = nullptr);
  Bytes DoExportBucket(uint32_t bucket) const;
  Bytes DoPurgeBucket(uint32_t bucket);
  Bytes DoBucketStats(uint32_t bucket) const;

  ReplicaState* state_ = nullptr;
  size_t capacity_ = 0;
};

}  // namespace bft

#endif  // SRC_SERVICE_KV_SERVICE_H_

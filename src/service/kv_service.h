// Replicated key-value store over the page-addressable state memory.
//
// A fixed-capacity open-addressing hash table: every slot is 256 bytes laid out directly in
// ReplicaState pages, so checkpointing, rollback, and state transfer cover the store without
// any serialization step. Deletes use tombstones so probe chains stay deterministic.
//
// Ops (all length-delimited via Writer/Reader):
//   PUT key value  -> "ok" | "full"
//   GET key        -> value | ""        (read-only)
//   DEL key        -> "ok" | "miss"
#ifndef SRC_SERVICE_KV_SERVICE_H_
#define SRC_SERVICE_KV_SERVICE_H_

#include <optional>
#include <string>

#include "src/common/serializer.h"
#include "src/service/service.h"

namespace bft {

class KvService : public Service {
 public:
  static constexpr size_t kSlotSize = 256;
  static constexpr size_t kMaxKey = 60;
  static constexpr size_t kMaxValue = 188;

  static Bytes PutOp(ByteView key, ByteView value);
  static Bytes GetOp(ByteView key);
  static Bytes DelOp(ByteView key);

  void Initialize(ReplicaState* state) override;

  Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) override;
  bool IsReadOnly(ByteView op) const override;
  std::optional<Bytes> KeyOf(ByteView op) const override;
  SimTime ExecutionCost(ByteView op) const override { return 3 * kMicrosecond; }

  size_t capacity() const { return capacity_; }
  size_t live_entries() const;

 private:
  struct SlotRef {
    size_t offset;  // byte offset of the slot in state memory
  };

  // Slot header layout: [state u8][klen u8][vlen u16][key kMaxKey][value kMaxValue].
  enum SlotState : uint8_t { kEmpty = 0, kUsed = 1, kTombstone = 2 };

  uint8_t SlotStateAt(size_t slot) const;
  Bytes SlotKey(size_t slot) const;
  Bytes SlotValue(size_t slot) const;
  void WriteSlot(size_t slot, uint8_t state, ByteView key, ByteView value);

  // Returns the slot holding `key`, or the first insertable slot, or nullopt if full.
  std::optional<size_t> FindSlot(ByteView key, bool for_insert) const;

  Bytes DoPut(ByteView key, ByteView value);
  Bytes DoGet(ByteView key) const;
  Bytes DoDel(ByteView key);

  ReplicaState* state_ = nullptr;
  size_t capacity_ = 0;
};

}  // namespace bft

#endif  // SRC_SERVICE_KV_SERVICE_H_

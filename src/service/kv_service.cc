#include "src/service/kv_service.h"

#include <cstring>

#include "src/crypto/digest.h"

namespace bft {

namespace {
constexpr size_t kHeader = 4;  // state + klen + vlen

uint64_t KeyHash(ByteView key) {
  Digest d = ComputeDigest(key);
  uint64_t h;
  std::memcpy(&h, d.bytes.data(), sizeof(h));
  return h;
}
}  // namespace

Bytes KvService::PutOp(ByteView key, ByteView value) {
  Writer w;
  w.Str("PUT");
  w.Var(key);
  w.Var(value);
  return w.Take();
}

Bytes KvService::GetOp(ByteView key) {
  Writer w;
  w.Str("GET");
  w.Var(key);
  return w.Take();
}

Bytes KvService::DelOp(ByteView key) {
  Writer w;
  w.Str("DEL");
  w.Var(key);
  return w.Take();
}

void KvService::Initialize(ReplicaState* state) {
  state_ = state;
  capacity_ = state->size_bytes() / kSlotSize;
}

bool KvService::IsReadOnly(ByteView op) const {
  Reader r(op);
  return r.Str() == "GET";
}

std::optional<Bytes> KvService::KeyOf(ByteView op) const {
  Reader r(op);
  std::string verb = r.Str();
  if (verb != "PUT" && verb != "GET" && verb != "DEL") {
    return std::nullopt;
  }
  Bytes key = r.Var();
  if (!r.ok()) {
    return std::nullopt;
  }
  return key;
}

uint8_t KvService::SlotStateAt(size_t slot) const {
  uint8_t s = 0;
  state_->Read(slot * kSlotSize, 1, &s);
  return s;
}

Bytes KvService::SlotKey(size_t slot) const {
  uint8_t header[kHeader];
  state_->Read(slot * kSlotSize, kHeader, header);
  size_t klen = header[1];
  Bytes key(klen);
  if (klen > 0) {
    state_->Read(slot * kSlotSize + kHeader, klen, key.data());
  }
  return key;
}

Bytes KvService::SlotValue(size_t slot) const {
  uint8_t header[kHeader];
  state_->Read(slot * kSlotSize, kHeader, header);
  size_t vlen = static_cast<size_t>(header[2]) | (static_cast<size_t>(header[3]) << 8);
  Bytes value(vlen);
  if (vlen > 0) {
    state_->Read(slot * kSlotSize + kHeader + kMaxKey, vlen, value.data());
  }
  return value;
}

void KvService::WriteSlot(size_t slot, uint8_t slot_state, ByteView key, ByteView value) {
  Bytes buf(kHeader + kMaxKey + kMaxValue, 0);
  buf[0] = slot_state;
  buf[1] = static_cast<uint8_t>(key.size());
  buf[2] = static_cast<uint8_t>(value.size() & 0xff);
  buf[3] = static_cast<uint8_t>(value.size() >> 8);
  // Empty keys/values carry a null data(); memcpy's arguments must never be null (UB).
  if (!key.empty()) {
    std::memcpy(buf.data() + kHeader, key.data(), key.size());
  }
  if (!value.empty()) {
    std::memcpy(buf.data() + kHeader + kMaxKey, value.data(), value.size());
  }
  state_->Write(slot * kSlotSize, buf);
}

std::optional<size_t> KvService::FindSlot(ByteView key, bool for_insert) const {
  size_t start = KeyHash(key) % capacity_;
  std::optional<size_t> first_free;
  for (size_t i = 0; i < capacity_; ++i) {
    size_t slot = (start + i) % capacity_;
    uint8_t s = SlotStateAt(slot);
    if (s == kEmpty) {
      if (for_insert) {
        return first_free.has_value() ? first_free : std::optional<size_t>(slot);
      }
      return std::nullopt;
    }
    if (s == kTombstone) {
      if (for_insert && !first_free.has_value()) {
        first_free = slot;
      }
      continue;
    }
    if (Equal(SlotKey(slot), key)) {
      return slot;
    }
  }
  return for_insert ? first_free : std::nullopt;
}

Bytes KvService::DoPut(ByteView key, ByteView value) {
  if (key.empty() || key.size() > kMaxKey || value.size() > kMaxValue) {
    return ToBytes("invalid");
  }
  std::optional<size_t> slot = FindSlot(key, /*for_insert=*/true);
  if (!slot.has_value()) {
    return ToBytes("full");
  }
  WriteSlot(*slot, kUsed, key, value);
  return ToBytes("ok");
}

Bytes KvService::DoGet(ByteView key) const {
  std::optional<size_t> slot = FindSlot(key, /*for_insert=*/false);
  if (!slot.has_value() || SlotStateAt(*slot) != kUsed) {
    return {};
  }
  return SlotValue(*slot);
}

Bytes KvService::DoDel(ByteView key) {
  std::optional<size_t> slot = FindSlot(key, /*for_insert=*/false);
  if (!slot.has_value() || SlotStateAt(*slot) != kUsed) {
    return ToBytes("miss");
  }
  WriteSlot(*slot, kTombstone, {}, {});
  return ToBytes("ok");
}

Bytes KvService::Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) {
  Reader r(op);
  std::string verb = r.Str();
  if (verb == "PUT") {
    Bytes key = r.Var();
    Bytes value = r.Var();
    if (!r.ok()) {
      return ToBytes("invalid");
    }
    return DoPut(key, value);
  }
  if (verb == "GET") {
    Bytes key = r.Var();
    if (!r.ok()) {
      return {};
    }
    return DoGet(key);
  }
  if (verb == "DEL") {
    Bytes key = r.Var();
    if (!r.ok()) {
      return ToBytes("invalid");
    }
    return DoDel(key);
  }
  return ToBytes("invalid");
}

size_t KvService::live_entries() const {
  size_t count = 0;
  for (size_t slot = 0; slot < capacity_; ++slot) {
    if (SlotStateAt(slot) == kUsed) {
      ++count;
    }
  }
  return count;
}

}  // namespace bft

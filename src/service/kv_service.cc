#include "src/service/kv_service.h"

#include <cstring>

#include "src/crypto/digest.h"

namespace bft {

namespace {
constexpr size_t kHeader = 4;  // state + klen + vlen

uint64_t KeyHash(ByteView key) {
  Digest d = ComputeDigest(key);
  uint64_t h;
  std::memcpy(&h, d.bytes.data(), sizeof(h));
  return h;
}

Bytes BucketOp(const char* verb, uint32_t bucket) {
  Writer w;
  w.Str(verb);
  w.U32(bucket);
  return w.Take();
}
}  // namespace

Bytes KvService::PutOp(ByteView key, ByteView value) {
  Writer w;
  w.Str("PUT");
  w.Var(key);
  w.Var(value);
  return w.Take();
}

Bytes KvService::GetOp(ByteView key) {
  Writer w;
  w.Str("GET");
  w.Var(key);
  return w.Take();
}

Bytes KvService::DelOp(ByteView key) {
  Writer w;
  w.Str("DEL");
  w.Var(key);
  return w.Take();
}

Bytes KvService::BucketStatsOp(uint32_t bucket) { return BucketOp("REB_STATS", bucket); }

std::optional<Bytes> KvService::SealBucketOp(uint32_t bucket) const {
  return BucketOp("MIG_SEAL", bucket);
}

std::optional<Bytes> KvService::ExportBucketOp(uint32_t bucket) const {
  return BucketOp("MIG_EXPORT", bucket);
}

std::optional<Bytes> KvService::AcceptBucketOp(uint32_t bucket) const {
  return BucketOp("MIG_ACCEPT", bucket);
}

std::optional<Bytes> KvService::UnsealBucketOp(uint32_t bucket) const {
  return BucketOp("MIG_UNSEAL", bucket);
}

std::optional<Bytes> KvService::ImportEntryOp(ByteView key, ByteView blob) const {
  Writer w;
  w.Str("MIG_IMPORT");
  w.Var(key);
  w.Var(blob);
  return w.Take();
}

std::optional<Bytes> KvService::PurgeBucketOp(uint32_t bucket) const {
  return BucketOp("MIG_PURGE", bucket);
}

void KvService::Initialize(ReplicaState* state) {
  state_ = state;
  // The moved-out bitmap claims the front of state memory; slots fill the rest. State starts
  // zeroed, so every bucket begins owned (no marker writes needed here — Initialize must not
  // dirty pages).
  capacity_ = (state->size_bytes() - kMovedBitmapBytes) / kSlotSize;
}

bool KvService::IsReadOnly(ByteView op) const {
  Reader r(op);
  return r.Str() == "GET";
}

std::optional<Bytes> KvService::KeyOf(ByteView op) const {
  Reader r(op);
  std::string verb = r.Str();
  if (verb != "PUT" && verb != "GET" && verb != "DEL") {
    return std::nullopt;  // MIG_*/REB_* ops are unkeyed: their issuers route them explicitly
  }
  Bytes key = r.Var();
  if (!r.ok()) {
    return std::nullopt;
  }
  return key;
}

bool KvService::IsAdminOp(ByteView op) const {
  Reader r(op);
  std::string verb = r.Str();
  return verb.rfind("MIG_", 0) == 0 || verb.rfind("REB_", 0) == 0;
}

bool KvService::BucketMovedOut(uint32_t bucket) const {
  uint8_t byte = 0;
  state_->Read(bucket / 8, 1, &byte);
  return (byte >> (bucket % 8)) & 1;
}

void KvService::SetBucketMoved(uint32_t bucket, bool moved) {
  uint8_t byte = 0;
  state_->Read(bucket / 8, 1, &byte);
  uint8_t mask = static_cast<uint8_t>(1u << (bucket % 8));
  byte = moved ? (byte | mask) : (byte & ~mask);
  state_->Write(bucket / 8, ByteView(&byte, 1));
}

uint8_t KvService::SlotStateAt(size_t slot) const {
  uint8_t s = 0;
  state_->Read(SlotOffset(slot), 1, &s);
  return s;
}

Bytes KvService::SlotKey(size_t slot) const {
  uint8_t header[kHeader];
  state_->Read(SlotOffset(slot), kHeader, header);
  size_t klen = header[1];
  Bytes key(klen);
  if (klen > 0) {
    state_->Read(SlotOffset(slot) + kHeader, klen, key.data());
  }
  return key;
}

Bytes KvService::SlotValue(size_t slot) const {
  uint8_t header[kHeader];
  state_->Read(SlotOffset(slot), kHeader, header);
  size_t vlen = static_cast<size_t>(header[2]) | (static_cast<size_t>(header[3]) << 8);
  Bytes value(vlen);
  if (vlen > 0) {
    state_->Read(SlotOffset(slot) + kHeader + kMaxKey, vlen, value.data());
  }
  return value;
}

void KvService::WriteSlot(size_t slot, uint8_t slot_state, ByteView key, ByteView value) {
  Bytes buf(kHeader + kMaxKey + kMaxValue, 0);
  buf[0] = slot_state;
  buf[1] = static_cast<uint8_t>(key.size());
  buf[2] = static_cast<uint8_t>(value.size() & 0xff);
  buf[3] = static_cast<uint8_t>(value.size() >> 8);
  // Empty keys/values carry a null data(); memcpy's arguments must never be null (UB).
  if (!key.empty()) {
    std::memcpy(buf.data() + kHeader, key.data(), key.size());
  }
  if (!value.empty()) {
    std::memcpy(buf.data() + kHeader + kMaxKey, value.data(), value.size());
  }
  state_->Write(SlotOffset(slot), buf);
}

std::optional<size_t> KvService::FindSlot(ByteView key, bool for_insert) const {
  size_t start = KeyHash(key) % capacity_;
  std::optional<size_t> first_free;
  for (size_t i = 0; i < capacity_; ++i) {
    size_t slot = (start + i) % capacity_;
    uint8_t s = SlotStateAt(slot);
    if (s == kEmpty) {
      if (for_insert) {
        return first_free.has_value() ? first_free : std::optional<size_t>(slot);
      }
      return std::nullopt;
    }
    if (s == kTombstone) {
      if (for_insert && !first_free.has_value()) {
        first_free = slot;
      }
      continue;
    }
    if (Equal(SlotKey(slot), key)) {
      return slot;
    }
  }
  return for_insert ? first_free : std::nullopt;
}

Bytes KvService::DoPut(ByteView key, ByteView value, int64_t* resident_delta) {
  if (key.empty() || key.size() > kMaxKey || value.size() > kMaxValue) {
    return ToBytes("invalid");
  }
  std::optional<size_t> slot = FindSlot(key, /*for_insert=*/true);
  if (!slot.has_value()) {
    return ToBytes("full");
  }
  if (resident_delta != nullptr) {
    // Overwrite: only the value-length difference; insert: the whole new entry.
    *resident_delta =
        SlotStateAt(*slot) == kUsed
            ? static_cast<int64_t>(value.size()) - static_cast<int64_t>(SlotValue(*slot).size())
            : static_cast<int64_t>(key.size() + value.size());
  }
  WriteSlot(*slot, kUsed, key, value);
  return ToBytes("ok");
}

Bytes KvService::DoGet(ByteView key) const {
  std::optional<size_t> slot = FindSlot(key, /*for_insert=*/false);
  if (!slot.has_value() || SlotStateAt(*slot) != kUsed) {
    return {};
  }
  return SlotValue(*slot);
}

Bytes KvService::DoDel(ByteView key, int64_t* resident_delta) {
  std::optional<size_t> slot = FindSlot(key, /*for_insert=*/false);
  if (!slot.has_value() || SlotStateAt(*slot) != kUsed) {
    return ToBytes("miss");
  }
  if (resident_delta != nullptr) {
    *resident_delta = -static_cast<int64_t>(key.size() + SlotValue(*slot).size());
  }
  WriteSlot(*slot, kTombstone, {}, {});
  return ToBytes("ok");
}

Bytes KvService::DoExportBucket(uint32_t bucket) const {
  // Slot-order enumeration: a pure function of replicated state, so every replica's export
  // result is byte-identical and the client's reply certificate forms.
  Writer w;
  size_t count_at = w.size();
  w.U32(0);
  uint32_t count = 0;
  ForEachUsedSlotInBucket(bucket, [&](size_t slot, Bytes key) {
    w.Var(key);
    w.Var(SlotValue(slot));
    ++count;
  });
  w.PatchU32(count_at, count);
  return w.Take();
}

Bytes KvService::DoPurgeBucket(uint32_t bucket) {
  std::vector<size_t> slots;
  ForEachUsedSlotInBucket(bucket, [&](size_t slot, Bytes) { slots.push_back(slot); });
  for (size_t slot : slots) {
    WriteSlot(slot, kTombstone, {}, {});
  }
  return ToBytes("ok");
}

Bytes KvService::DoBucketStats(uint32_t bucket) const {
  uint32_t count = 0;
  uint64_t bytes = 0;
  ForEachUsedSlotInBucket(bucket, [&](size_t slot, Bytes key) {
    ++count;
    bytes += key.size() + SlotValue(slot).size();
  });
  Writer w;
  w.U32(count);
  w.U64(bytes);
  return w.Take();
}

Bytes KvService::Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) {
  Reader r(op);
  std::string verb = r.Str();
  if (verb == "PUT" || verb == "GET" || verb == "DEL") {
    Bytes key = r.Var();
    bool key_ok = r.ok();
    // Moved-out check before any state access: a sealed bucket's entries are frozen for
    // export, and the marker tells stale-mapped clients to re-route. Deterministic — the
    // bitmap is replicated state.
    uint32_t bucket = key_ok ? KeyRing::BucketForKey(key) : 0;
    if (key_ok && BucketMovedOut(bucket)) {
      return Bytes(StaleOwnerResult().begin(), StaleOwnerResult().end());
    }
    // Load observation for the rebalancer: pure observer, fed after the moved-out gate so
    // only ops this group actually served are counted (re-routed ops count at their final
    // owner). MIG_IMPORT/MIG_PURGE stay invisible to the sink — a migration relocates
    // entries, it is not client load, and the bucket's logical resident size is unchanged.
    BucketStatsSink* sink = stats_sink();
    int64_t delta = 0;
    Bytes result;
    if (verb == "PUT") {
      Bytes value = r.Var();
      if (!key_ok || !r.ok()) {
        return ToBytes("invalid");
      }
      result = DoPut(key, value, &delta);
    } else if (verb == "GET") {
      if (!key_ok) {
        return {};
      }
      result = DoGet(key);
    } else {
      if (!key_ok) {
        return ToBytes("invalid");
      }
      result = DoDel(key, &delta);
    }
    if (sink != nullptr) {
      sink->RecordKeyedOp(bucket, op.size(), delta);
    }
    return result;
  }
  if (verb == "REB_STATS") {
    uint32_t bucket = r.U32();
    if (!r.ok() || bucket >= KeyRing::kNumBuckets) {
      return ToBytes("invalid");
    }
    return DoBucketStats(bucket);
  }
  if (verb == "MIG_SEAL" || verb == "MIG_ACCEPT" || verb == "MIG_UNSEAL" ||
      verb == "MIG_EXPORT" || verb == "MIG_PURGE") {
    uint32_t bucket = r.U32();
    if (!r.ok() || bucket >= KeyRing::kNumBuckets) {
      return ToBytes("invalid");
    }
    if (verb == "MIG_SEAL") {
      SetBucketMoved(bucket, true);
      return ToBytes("ok");
    }
    if (verb == "MIG_ACCEPT") {
      // Destination-side prepare: stale entries from an earlier aborted move toward this
      // group must not survive under the fresh import set (they would shadow deletes that
      // happened at the true owner in between), so accept purges before clearing the bit.
      DoPurgeBucket(bucket);
      SetBucketMoved(bucket, false);
      return ToBytes("ok");
    }
    if (verb == "MIG_UNSEAL") {
      SetBucketMoved(bucket, false);  // marker only: the rollback path's data is live
      return ToBytes("ok");
    }
    if (verb == "MIG_EXPORT") {
      return DoExportBucket(bucket);
    }
    return DoPurgeBucket(bucket);
  }
  if (verb == "MIG_IMPORT") {
    Bytes key = r.Var();
    Bytes value = r.Var();
    if (!r.ok()) {
      return ToBytes("invalid");
    }
    // Bypasses the moved-out check (the destination runs MIG_ACCEPT first anyway): imports
    // install exported entries verbatim.
    return DoPut(key, value);
  }
  return ToBytes("invalid");
}

std::vector<Bytes> KvService::EnumerateBucket(uint32_t bucket) const {
  std::vector<Bytes> keys;
  ForEachUsedSlotInBucket(bucket, [&](size_t, Bytes key) { keys.push_back(std::move(key)); });
  return keys;
}

std::optional<Bytes> KvService::ExportEntry(ByteView key) const {
  std::optional<size_t> slot = FindSlot(key, /*for_insert=*/false);
  if (!slot.has_value() || SlotStateAt(*slot) != kUsed) {
    return std::nullopt;
  }
  return SlotValue(*slot);
}

size_t KvService::live_entries() const {
  size_t count = 0;
  for (size_t slot = 0; slot < capacity_; ++slot) {
    if (SlotStateAt(slot) == kUsed) {
      ++count;
    }
  }
  return count;
}

}  // namespace bft

// Tiny demonstration service: a replicated counter with access control by client id.
//
// Ops: "inc" (read-write), "add <u64>" (read-write), "get" (read-only). The counter lives in
// the first 8 bytes of the replica's state memory.
#ifndef SRC_SERVICE_COUNTER_SERVICE_H_
#define SRC_SERVICE_COUNTER_SERVICE_H_

#include <string>

#include "src/common/serializer.h"
#include "src/service/service.h"

namespace bft {

class CounterService : public Service {
 public:
  static Bytes IncOp() { return ToBytes("inc"); }
  static Bytes AddOp(uint64_t delta) {
    Writer w;
    w.Str("add");
    w.U64(delta);
    return w.Take();
  }
  static Bytes GetOp() { return ToBytes("get"); }

  static uint64_t DecodeValue(ByteView result) {
    Reader r(result);
    return r.U64();
  }

  void Initialize(ReplicaState* state) override { state_ = state; }

  Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) override {
    uint64_t value = Load();
    Reader r(op);
    std::string name = op.size() == 3 ? ToString(op) : Reader(op).Str();
    if (name == "inc") {
      Store(value + 1);
      value += 1;
    } else if (name == "add") {
      Reader r2(op);
      r2.Str();
      uint64_t delta = r2.U64();
      if (r2.ok()) {
        Store(value + delta);
        value += delta;
      }
    }
    Writer w;
    w.U64(value);
    return w.Take();
  }

  bool IsReadOnly(ByteView op) const override { return ToString(op) == "get"; }

 private:
  uint64_t Load() const {
    uint64_t value = 0;
    state_->Read(0, sizeof(value), reinterpret_cast<uint8_t*>(&value));
    return value;
  }
  void Store(uint64_t value) {
    state_->Write(0, ByteView(reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
  }

  ReplicaState* state_ = nullptr;
};

}  // namespace bft

#endif  // SRC_SERVICE_COUNTER_SERVICE_H_

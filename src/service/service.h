// Replicated service interface (the paper's upcalls, Section 6.2).
//
// A service is a deterministic state machine: Execute()'s result and state mutations must be
// fully determined by (current state, client, op, ndet). All mutable service state must live
// in the ReplicaState page memory and be announced with Modify() before writes (Byz_modify),
// which is what makes checkpointing, rollback, and state transfer work.
#ifndef SRC_SERVICE_SERVICE_H_
#define SRC_SERVICE_SERVICE_H_

#include <memory>
#include <optional>

#include "src/common/bytes.h"
#include "src/core/clock.h"
#include "src/core/messages.h"
#include "src/core/state.h"

namespace bft {

class Service {
 public:
  virtual ~Service() = default;

  // Binds the service to the replica's state memory and initializes its data structures.
  // Called exactly once, before any Execute().
  virtual void Initialize(ReplicaState* state) = 0;

  // Executes one operation. `ndet` is the batch's agreed non-deterministic value (Section 5.4).
  // `read_only` is true only for requests that passed IsReadOnly().
  virtual Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) = 0;

  // Service-specific check that an operation really is read-only (the paper's upcall guarding
  // the read-only optimization against faulty clients, Section 5.1.3).
  virtual bool IsReadOnly(ByteView op) const { return false; }

  // Sharding upcall (src/shard/): the key `op` addresses, when the service's operations are
  // keyed. The shard router uses it to map an op onto its owning replica group. nullopt means
  // the operation is unkeyed; routers send such ops to a designated default shard.
  virtual std::optional<Bytes> KeyOf(ByteView op) const { return std::nullopt; }

  // Primary upcall: propose the non-deterministic value for the batch at `seq` (Section 5.4).
  virtual Bytes ChooseNonDet(SeqNo seq, SimTime now) { return {}; }

  // Backup upcall: deterministically check the primary's proposed value.
  virtual bool CheckNonDet(ByteView ndet, SimTime now) const { return true; }

  // Simulated CPU cost of executing `op` (charged to the replica's meter).
  virtual SimTime ExecutionCost(ByteView op) const { return 2 * kMicrosecond; }
};

}  // namespace bft

#endif  // SRC_SERVICE_SERVICE_H_

// Replicated service interface (the paper's upcalls, Section 6.2).
//
// A service is a deterministic state machine: Execute()'s result and state mutations must be
// fully determined by (current state, client, op, ndet). All mutable service state must live
// in the ReplicaState page memory and be announced with Modify() before writes (Byz_modify),
// which is what makes checkpointing, rollback, and state transfer work.
#ifndef SRC_SERVICE_SERVICE_H_
#define SRC_SERVICE_SERVICE_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/clock.h"
#include "src/core/messages.h"
#include "src/core/state.h"

namespace bft {

// Observer for executed keyed operations (the rebalancer's raw signal; src/shard/bucket_stats.h
// implements it). Fed from inside Service::Execute, so it must be cheap — counter increments,
// no allocation — and it must never influence execution: it is a pure observer outside the
// replicated state machine. Implementations tolerate over-counting: tentative executions
// rolled back by a view change re-execute, and only approximate load is needed.
class BucketStatsSink {
 public:
  virtual ~BucketStatsSink() = default;

  // One keyed op executed against `bucket` (common/key_ring.h geometry). `op_bytes` is the
  // encoded operation size; `resident_delta` the change in stored payload bytes the op caused
  // (positive for inserts/growth, negative for deletes/shrink, 0 for reads).
  virtual void RecordKeyedOp(uint32_t bucket, size_t op_bytes, int64_t resident_delta) = 0;
};

class Service {
 public:
  virtual ~Service() = default;

  // Binds the service to the replica's state memory and initializes its data structures.
  // Called exactly once, before any Execute().
  virtual void Initialize(ReplicaState* state) = 0;

  // Executes one operation. `ndet` is the batch's agreed non-deterministic value (Section 5.4).
  // `read_only` is true only for requests that passed IsReadOnly().
  virtual Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) = 0;

  // Service-specific check that an operation really is read-only (the paper's upcall guarding
  // the read-only optimization against faulty clients, Section 5.1.3).
  virtual bool IsReadOnly(ByteView op) const { return false; }

  // Sharding upcall (src/shard/): the key `op` addresses, when the service's operations are
  // keyed. The shard router uses it to map an op onto its owning replica group. nullopt means
  // the operation is unkeyed; routers send such ops to a designated default shard.
  virtual std::optional<Bytes> KeyOf(ByteView op) const { return std::nullopt; }

  // Admin classification: operations that reconfigure or introspect the service's control
  // plane (bucket migration MIG_*, rebalance stats REB_*) rather than serve data. The replica
  // rejects admin ops from clients outside ReplicaConfig's admin id range with
  // AccessDeniedResult() before Execute() runs; see ReplicaConfig::admin_id_base.
  virtual bool IsAdminOp(ByteView op) const { return false; }

  // Installs the keyed-op load observer (nullptr detaches). Harness-side wiring: the sharded
  // cluster points exactly one replica's service per group at the shared BucketStatsRegistry
  // so each executed client op is counted once, not once per replica.
  void set_stats_sink(BucketStatsSink* sink) { stats_sink_ = sink; }
  BucketStatsSink* stats_sink() const { return stats_sink_; }

  // --- Keyed-state migration upcalls (driven by src/shard/migration.h) ---------------------
  // A keyed service may support live bucket migration: its keyed entries partition onto the
  // canonical ring (common/key_ring.h), and the migration coordinator moves one bucket's
  // entries between replica groups *through the ordered pipeline* — every migration step is a
  // regular replicated operation, so all correct replicas of a group apply it at the same
  // sequence number and reply certificates form as usual. The Op builders below return the
  // operation bytes for each step, or nullopt if the service does not support migration.
  //
  // The protocol a supporting service must implement in Execute():
  //   SealBucketOp(b)    — mark bucket b moved-out. From then on, ops whose key falls in b
  //                        return StaleOwnerResult() instead of executing (the stale-map
  //                        signal routers re-route on). The marker is replicated state: it
  //                        must live in ReplicaState memory so checkpoints, rollback, and
  //                        state transfer cover it.
  //   ExportBucketOp(b)  — result is the bucket's entries in the ParseExportedEntries()
  //                        format, enumerated in a deterministic, state-defined order (so the
  //                        result certifies across replicas). Seal/export themselves are
  //                        exempt from the moved check.
  //   AcceptBucketOp(b)  — prepare to receive bucket b at the destination: drop any stale
  //                        local entries for b (leftovers of an earlier aborted move would
  //                        otherwise survive the re-import and resurrect deleted keys) and
  //                        clear any moved-out marker. Run before imports.
  //   UnsealBucketOp(b)  — clear the moved-out marker ONLY (no purge): the rollback path
  //                        un-seals the *source*, whose bucket data is live and must stay.
  //   ImportEntryOp(k,v) — install one exported entry in the destination group.
  //   PurgeBucketOp(b)   — drop bucket b's (sealed, already-exported) entries from local
  //                        state; space hygiene on the source after the move publishes.
  //
  // Trust assumption, documented: these admin ops are accepted from any authenticated
  // client — a Byzantine *client* could seal or purge a bucket it should not (the PBFT
  // guarantee is that all correct replicas agree on the damage, not that the op was
  // authorized). A deployment would gate MIG_* ops on an admin principal (e.g. a reserved
  // client-id range in ReplicaConfig); wiring that ACL is reconfiguration follow-up work.
  virtual std::optional<Bytes> SealBucketOp(uint32_t bucket) const { return std::nullopt; }
  virtual std::optional<Bytes> ExportBucketOp(uint32_t bucket) const { return std::nullopt; }
  virtual std::optional<Bytes> AcceptBucketOp(uint32_t bucket) const { return std::nullopt; }
  virtual std::optional<Bytes> UnsealBucketOp(uint32_t bucket) const { return std::nullopt; }
  virtual std::optional<Bytes> ImportEntryOp(ByteView key, ByteView blob) const {
    return std::nullopt;
  }
  virtual std::optional<Bytes> PurgeBucketOp(uint32_t bucket) const { return std::nullopt; }

  // Direct state views backing tests and migration verification (not part of the ordered
  // protocol): the keys currently present in `bucket`, and one entry's exported blob.
  virtual std::vector<Bytes> EnumerateBucket(uint32_t bucket) const { return {}; }
  virtual std::optional<Bytes> ExportEntry(ByteView key) const { return std::nullopt; }

  // Reserved Execute() result meaning "this key's bucket has migrated away; the sender's
  // shard map is stale". Routers (ShardedClient) intercept it and re-route instead of
  // delivering it. Limitation, documented: a service value byte-identical to the marker is
  // indistinguishable from it — real deployments would tag replies out of band.
  static ByteView StaleOwnerResult();
  static bool IsStaleOwnerResult(ByteView result);

  // Reserved Execute()-level reply for an admin op issued by a non-admin client (the clean
  // error the ACL check returns instead of executing). Printable on purpose: callers surface
  // it to operators verbatim.
  static ByteView AccessDeniedResult();
  static bool IsAccessDeniedResult(ByteView result);

  // Export wire format shared by every migrating service:
  //   [count u32] then per entry [key var][blob var].
  // Returns nullopt on malformed input (defensive: certificates make forgery moot, but the
  // decoder never trusts lengths).
  static std::optional<std::vector<std::pair<Bytes, Bytes>>> ParseExportedEntries(
      ByteView blob);

  // Primary upcall: propose the non-deterministic value for the batch at `seq` (Section 5.4).
  virtual Bytes ChooseNonDet(SeqNo seq, SimTime now) { return {}; }

  // Backup upcall: deterministically check the primary's proposed value.
  virtual bool CheckNonDet(ByteView ndet, SimTime now) const { return true; }

  // Simulated CPU cost of executing `op` (charged to the replica's meter).
  virtual SimTime ExecutionCost(ByteView op) const { return 2 * kMicrosecond; }

 private:
  BucketStatsSink* stats_sink_ = nullptr;
};

}  // namespace bft

#endif  // SRC_SERVICE_SERVICE_H_

// Replicated service interface (the paper's upcalls, Section 6.2).
//
// A service is a deterministic state machine: Execute()'s result and state mutations must be
// fully determined by (current state, client, op, ndet). All mutable service state must live
// in the ReplicaState page memory and be announced with Modify() before writes (Byz_modify),
// which is what makes checkpointing, rollback, and state transfer work.
#ifndef SRC_SERVICE_SERVICE_H_
#define SRC_SERVICE_SERVICE_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/clock.h"
#include "src/core/messages.h"
#include "src/core/state.h"

namespace bft {

class Service {
 public:
  virtual ~Service() = default;

  // Binds the service to the replica's state memory and initializes its data structures.
  // Called exactly once, before any Execute().
  virtual void Initialize(ReplicaState* state) = 0;

  // Executes one operation. `ndet` is the batch's agreed non-deterministic value (Section 5.4).
  // `read_only` is true only for requests that passed IsReadOnly().
  virtual Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) = 0;

  // Service-specific check that an operation really is read-only (the paper's upcall guarding
  // the read-only optimization against faulty clients, Section 5.1.3).
  virtual bool IsReadOnly(ByteView op) const { return false; }

  // Sharding upcall (src/shard/): the key `op` addresses, when the service's operations are
  // keyed. The shard router uses it to map an op onto its owning replica group. nullopt means
  // the operation is unkeyed; routers send such ops to a designated default shard.
  virtual std::optional<Bytes> KeyOf(ByteView op) const { return std::nullopt; }

  // --- Keyed-state migration upcalls (driven by src/shard/migration.h) ---------------------
  // A keyed service may support live bucket migration: its keyed entries partition onto the
  // canonical ring (common/key_ring.h), and the migration coordinator moves one bucket's
  // entries between replica groups *through the ordered pipeline* — every migration step is a
  // regular replicated operation, so all correct replicas of a group apply it at the same
  // sequence number and reply certificates form as usual. The Op builders below return the
  // operation bytes for each step, or nullopt if the service does not support migration.
  //
  // The protocol a supporting service must implement in Execute():
  //   SealBucketOp(b)    — mark bucket b moved-out. From then on, ops whose key falls in b
  //                        return StaleOwnerResult() instead of executing (the stale-map
  //                        signal routers re-route on). The marker is replicated state: it
  //                        must live in ReplicaState memory so checkpoints, rollback, and
  //                        state transfer cover it.
  //   ExportBucketOp(b)  — result is the bucket's entries in the ParseExportedEntries()
  //                        format, enumerated in a deterministic, state-defined order (so the
  //                        result certifies across replicas). Seal/export themselves are
  //                        exempt from the moved check.
  //   AcceptBucketOp(b)  — clear any moved-out marker for b (run on the destination before
  //                        imports, so a bucket can move away and later return).
  //   ImportEntryOp(k,v) — install one exported entry in the destination group.
  //   PurgeBucketOp(b)   — drop bucket b's (sealed, already-exported) entries from local
  //                        state; space hygiene on the source after the move publishes.
  //
  // Trust assumption, documented: these admin ops are accepted from any authenticated
  // client — a Byzantine *client* could seal or purge a bucket it should not (the PBFT
  // guarantee is that all correct replicas agree on the damage, not that the op was
  // authorized). A deployment would gate MIG_* ops on an admin principal (e.g. a reserved
  // client-id range in ReplicaConfig); wiring that ACL is reconfiguration follow-up work.
  virtual std::optional<Bytes> SealBucketOp(uint32_t bucket) const { return std::nullopt; }
  virtual std::optional<Bytes> ExportBucketOp(uint32_t bucket) const { return std::nullopt; }
  virtual std::optional<Bytes> AcceptBucketOp(uint32_t bucket) const { return std::nullopt; }
  virtual std::optional<Bytes> ImportEntryOp(ByteView key, ByteView blob) const {
    return std::nullopt;
  }
  virtual std::optional<Bytes> PurgeBucketOp(uint32_t bucket) const { return std::nullopt; }

  // Direct state views backing tests and migration verification (not part of the ordered
  // protocol): the keys currently present in `bucket`, and one entry's exported blob.
  virtual std::vector<Bytes> EnumerateBucket(uint32_t bucket) const { return {}; }
  virtual std::optional<Bytes> ExportEntry(ByteView key) const { return std::nullopt; }

  // Reserved Execute() result meaning "this key's bucket has migrated away; the sender's
  // shard map is stale". Routers (ShardedClient) intercept it and re-route instead of
  // delivering it. Limitation, documented: a service value byte-identical to the marker is
  // indistinguishable from it — real deployments would tag replies out of band.
  static ByteView StaleOwnerResult();
  static bool IsStaleOwnerResult(ByteView result);

  // Export wire format shared by every migrating service:
  //   [count u32] then per entry [key var][blob var].
  // Returns nullopt on malformed input (defensive: certificates make forgery moot, but the
  // decoder never trusts lengths).
  static std::optional<std::vector<std::pair<Bytes, Bytes>>> ParseExportedEntries(
      ByteView blob);

  // Primary upcall: propose the non-deterministic value for the batch at `seq` (Section 5.4).
  virtual Bytes ChooseNonDet(SeqNo seq, SimTime now) { return {}; }

  // Backup upcall: deterministically check the primary's proposed value.
  virtual bool CheckNonDet(ByteView ndet, SimTime now) const { return true; }

  // Simulated CPU cost of executing `op` (charged to the replica's meter).
  virtual SimTime ExecutionCost(ByteView op) const { return 2 * kMicrosecond; }
};

}  // namespace bft

#endif  // SRC_SERVICE_SERVICE_H_

// From-scratch SHA-256 (FIPS 180-4). The whole repository's hashing bottoms out here: message
// digests, MACs, partition-tree page digests, and AdHash all derive from this implementation.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace bft {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using DigestBytes = std::array<uint8_t, kDigestSize>;

  Sha256();

  // Streaming interface.
  void Update(ByteView data);
  DigestBytes Finish();

  // One-shot convenience.
  static DigestBytes Hash(ByteView data);

  // Compression state captured at a 64-byte block boundary. Lets callers precompute the hash
  // of a fixed prefix (HMAC's ipad/opad blocks) once and replay it per message, turning each
  // MAC into two compression-function finishes instead of four block hashes.
  struct MidState {
    std::array<uint32_t, 8> h{};
    uint64_t total_len = 0;
  };

  // Valid only when the bytes hashed so far are a multiple of 64 (no partial block buffered).
  MidState Snapshot() const;
  // Resets this instance to continue hashing from `mid`.
  void Restore(const MidState& mid);

  // Low-level: compresses `n` consecutive 64-byte blocks directly into `h` (dispatching to
  // the SHA-NI kernel when available). For callers that do their own padding — HmacState's
  // fixed-shape finishes compress exactly one block per hash with no buffering.
  static void Compress(std::array<uint32_t, 8>& h, const uint8_t* blocks, size_t n);

  // Benchmark hook: true if the hardware kernel is compiled in and the CPU has it.
  static bool UsingShaNi();
  // Benchmark hook: disables the hardware kernel process-wide so bench_crypto can quantify
  // its contribution separately from the state cache. Not thread-safe; call at startup.
  static void ForceScalarForBenchmarks(bool force);

 private:
  // Compresses `n` consecutive 64-byte blocks. Dispatches once to the SHA-NI kernel when the
  // CPU has it (x86 SHA extensions; ~6x the scalar path, state pinned in registers across
  // blocks) and otherwise to the portable scalar implementation. Identical output bit for
  // bit — the FIPS vectors in crypto_test cover whichever path the host selects.
  void ProcessBlocks(const uint8_t* blocks, size_t n);
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
};

}  // namespace bft

#endif  // SRC_CRYPTO_SHA256_H_

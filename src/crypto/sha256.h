// From-scratch SHA-256 (FIPS 180-4). The whole repository's hashing bottoms out here: message
// digests, MACs, partition-tree page digests, and AdHash all derive from this implementation.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace bft {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using DigestBytes = std::array<uint8_t, kDigestSize>;

  Sha256();

  // Streaming interface.
  void Update(ByteView data);
  DigestBytes Finish();

  // One-shot convenience.
  static DigestBytes Hash(ByteView data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
};

}  // namespace bft

#endif  // SRC_CRYPTO_SHA256_H_

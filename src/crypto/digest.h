// 16-byte message digests.
//
// The paper uses MD5 (16 bytes); we substitute SHA-256 truncated to 16 bytes, keeping the
// wire size and the collision-resistance assumption (see DESIGN.md, substitution table).
#ifndef SRC_CRYPTO_DIGEST_H_
#define SRC_CRYPTO_DIGEST_H_

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "src/common/bytes.h"

namespace bft {

struct Digest {
  static constexpr size_t kSize = 16;
  std::array<uint8_t, kSize> bytes{};

  auto operator<=>(const Digest&) const = default;

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  ByteView View() const { return ByteView(bytes.data(), bytes.size()); }
  std::string Hex() const;
};

// Computes the truncated digest of `data`.
Digest ComputeDigest(ByteView data);

// Digest of the concatenation of several fields; each field is length-delimited internally so
// that (a, bc) and (ab, c) hash differently.
Digest ComputeDigestParts(std::initializer_list<ByteView> parts);

struct DigestHasher {
  size_t operator()(const Digest& d) const {
    uint64_t v;
    std::memcpy(&v, d.bytes.data(), sizeof(v));
    return static_cast<size_t>(v);
  }
};

}  // namespace bft

#endif  // SRC_CRYPTO_DIGEST_H_

#include "src/crypto/digest.h"

#include "src/common/serializer.h"
#include "src/crypto/sha256.h"

namespace bft {

std::string Digest::Hex() const { return HexEncode(View()); }

Digest ComputeDigest(ByteView data) {
  Sha256::DigestBytes full = Sha256::Hash(data);
  Digest d;
  std::memcpy(d.bytes.data(), full.data(), Digest::kSize);
  return d;
}

Digest ComputeDigestParts(std::initializer_list<ByteView> parts) {
  Writer w;
  for (ByteView p : parts) {
    w.Var(p);
  }
  return ComputeDigest(w.data());
}

}  // namespace bft

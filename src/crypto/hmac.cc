#include "src/crypto/hmac.h"

#include <cstring>

namespace bft {

Sha256::DigestBytes HmacSha256(ByteView key, ByteView message) {
  constexpr size_t kBlockSize = 64;
  uint8_t key_block[kBlockSize] = {0};
  if (key.size() > kBlockSize) {
    Sha256::DigestBytes hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlockSize];
  uint8_t opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteView(ipad, kBlockSize));
  inner.Update(message);
  Sha256::DigestBytes inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(ByteView(opad, kBlockSize));
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

}  // namespace bft

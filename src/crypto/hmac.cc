#include "src/crypto/hmac.h"

#include <cstring>

namespace bft {

HmacState::HmacState(ByteView key) {
  constexpr size_t kBlockSize = 64;
  uint8_t key_block[kBlockSize] = {0};
  if (key.size() > kBlockSize) {
    Sha256::DigestBytes hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t pad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = key_block[i] ^ 0x36;
  }
  Sha256 inner;
  inner.Update(ByteView(pad, kBlockSize));
  inner_ = inner.Snapshot();

  for (size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = key_block[i] ^ 0x5c;
  }
  Sha256 outer;
  outer.Update(ByteView(pad, kBlockSize));
  outer_ = outer.Snapshot();
}

namespace {

inline void StoreBe32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v >> 24);
  out[1] = static_cast<uint8_t>(v >> 16);
  out[2] = static_cast<uint8_t>(v >> 8);
  out[3] = static_cast<uint8_t>(v);
}

inline void StoreBe64(uint8_t* out, uint64_t v) {
  StoreBe32(out, static_cast<uint32_t>(v >> 32));
  StoreBe32(out + 4, static_cast<uint32_t>(v));
}

}  // namespace

Sha256::DigestBytes HmacState::Mac(ByteView message) const {
  // Every authenticated protocol header fits one padded block (<= 55 bytes leaves room for
  // the 0x80 marker and the 8-byte length), making the whole MAC literally two compression
  // calls on stack blocks: one finishing the inner hash, one finishing the outer.
  if (message.size() <= 55) {
    // Only the gap between the 0x80 marker and the length field needs zeroing.
    uint8_t block[64];
    if (!message.empty()) {
      std::memcpy(block, message.data(), message.size());
    }
    block[message.size()] = 0x80;
    std::memset(block + message.size() + 1, 0, 55 - message.size());
    StoreBe64(block + 56, (64 + message.size()) * 8);  // ipad block + message, in bits
    std::array<uint32_t, 8> h = inner_.h;
    Sha256::Compress(h, block, 1);

    uint8_t outer_block[64];
    for (int i = 0; i < 8; ++i) {
      StoreBe32(outer_block + i * 4, h[i]);
    }
    outer_block[Sha256::kDigestSize] = 0x80;
    std::memset(outer_block + Sha256::kDigestSize + 1, 0, 55 - Sha256::kDigestSize);
    StoreBe64(outer_block + 56, (64 + Sha256::kDigestSize) * 8);
    std::array<uint32_t, 8> ho = outer_.h;
    Sha256::Compress(ho, outer_block, 1);

    Sha256::DigestBytes out;
    for (int i = 0; i < 8; ++i) {
      StoreBe32(out.data() + i * 4, ho[i]);
    }
    return out;
  }

  Sha256 inner;
  inner.Restore(inner_);
  inner.Update(message);
  Sha256::DigestBytes inner_digest = inner.Finish();

  Sha256 outer;
  outer.Restore(outer_);
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256::DigestBytes HmacSha256(ByteView key, ByteView message) {
  return HmacState(key).Mac(message);
}

}  // namespace bft

// Simulated public-key signatures.
//
// The paper uses Rabin-1024 via SFS. This repository substitutes a keyed-hash construction
// with asymmetric *semantics* inside the simulation: only the holder of a PrivateKey object
// can produce a node's signature, and anyone holding the PublicKeyDirectory can verify.
// Unforgeability holds by construction (the secret never leaves the directory/private key).
// The CPU cost asymmetry that drives the paper's BFT vs BFT-PK comparison is charged by the
// performance model (PerfModel::sign_cost / verify_cost), not here. See DESIGN.md.
#ifndef SRC_CRYPTO_SIGNATURE_H_
#define SRC_CRYPTO_SIGNATURE_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/common/bytes.h"
#include "src/common/thread_annotations.h"

namespace bft {

using PrincipalId = uint32_t;

struct Signature {
  static constexpr size_t kSize = 128;  // Matches an RSA/Rabin-1024 signature's wire size.
  Bytes bytes;

  bool operator==(const Signature& other) const = default;
};

class PrivateKey;

// Holds verification material for all principals. In a deployment this would be the set of
// public keys in read-only memory; here it is shared by reference among simulated nodes.
// Thread-safe: a replica restarted at runtime (RtCluster::RestartReplica) re-runs Generate
// while live nodes may be verifying, so registration takes the lock exclusively and lookups
// share it. Same-(id, seed) regeneration writes back identical bytes by construction.
class PublicKeyDirectory {
 public:
  // Generates a fresh keypair for `id` and registers its verification material.
  std::unique_ptr<PrivateKey> Generate(PrincipalId id, uint64_t seed);

  bool Verify(PrincipalId id, ByteView message, const Signature& sig) const;

 private:
  friend class PrivateKey;
  mutable SharedMutex mu_;
  std::map<PrincipalId, Bytes> secrets_ BFT_GUARDED_BY(mu_);
};

class PrivateKey {
 public:
  Signature Sign(ByteView message) const;
  PrincipalId id() const { return id_; }

 private:
  friend class PublicKeyDirectory;
  PrivateKey(PrincipalId id, Bytes secret) : id_(id), secret_(std::move(secret)) {}

  PrincipalId id_;
  Bytes secret_;
};

}  // namespace bft

#endif  // SRC_CRYPTO_SIGNATURE_H_

// AdHash incremental collision-resistant hashing (Bellare & Micciancio '97), as used by the
// paper's hierarchical checkpoint digests: the digest of a meta-data partition is the sum,
// modulo a large integer, of the digests of its children — so updating one child updates the
// parent in O(1).
#ifndef SRC_CRYPTO_ADHASH_H_
#define SRC_CRYPTO_ADHASH_H_

#include <cstdint>
#include <cstring>

#include "src/common/bytes.h"
#include "src/crypto/digest.h"

namespace bft {

class AdHash {
 public:
  AdHash() = default;

  // Interprets the 16-byte digest as a little-endian 128-bit integer.
  static unsigned __int128 ToInt(const Digest& d) {
    uint64_t lo;
    uint64_t hi;
    std::memcpy(&lo, d.bytes.data(), 8);
    std::memcpy(&hi, d.bytes.data() + 8, 8);
    return (static_cast<unsigned __int128>(hi) << 64) | lo;
  }

  void Add(const Digest& d) { sum_ += ToInt(d); }
  void Remove(const Digest& d) { sum_ -= ToInt(d); }

  // Replaces an element in O(1) — the core incremental-update operation.
  void Replace(const Digest& old_value, const Digest& new_value) {
    Remove(old_value);
    Add(new_value);
  }

  // Collapses the running sum to a 16-byte digest comparable across replicas.
  Digest Value() const {
    Digest d;
    uint64_t lo = static_cast<uint64_t>(sum_);
    uint64_t hi = static_cast<uint64_t>(sum_ >> 64);
    std::memcpy(d.bytes.data(), &lo, 8);
    std::memcpy(d.bytes.data() + 8, &hi, 8);
    return d;
  }

  bool operator==(const AdHash& other) const { return sum_ == other.sum_; }

 private:
  unsigned __int128 sum_ = 0;
};

}  // namespace bft

#endif  // SRC_CRYPTO_ADHASH_H_

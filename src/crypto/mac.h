// Message authentication codes.
//
// The paper uses UMAC32 (64-bit tag: 32-bit MAC + 32-bit nonce) computed over fixed-size
// message headers. We use HMAC-SHA-256 truncated to 8 bytes, same tag size and role.
#ifndef SRC_CRYPTO_MAC_H_
#define SRC_CRYPTO_MAC_H_

#include <array>
#include <compare>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/crypto/hmac.h"

namespace bft {

struct MacTag {
  static constexpr size_t kSize = 8;
  std::array<uint8_t, kSize> bytes{};

  auto operator<=>(const MacTag&) const = default;

  ByteView View() const { return ByteView(bytes.data(), bytes.size()); }
};

// Session keys are 16 bytes, matching the 128-bit keys the BFT library establishes via its
// Rabin-encrypted new-key messages.
constexpr size_t kSessionKeySize = 16;

MacTag ComputeMac(ByteView key, ByteView message);

// Hot-path variant: the key schedule is precomputed once per session key and reused for every
// MAC under it. Byte-identical to ComputeMac(key, message) for the state built from `key`.
MacTag ComputeMac(const HmacState& state, ByteView message);

// Constant-time-ish comparison; timing attacks are out of scope in a simulator but the habit
// is kept.
bool MacEqual(const MacTag& a, const MacTag& b);

}  // namespace bft

#endif  // SRC_CRYPTO_MAC_H_

#include "src/crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BFT_SHA_NI_POSSIBLE 1
#endif

namespace bft {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

bool g_force_scalar = false;  // bench hook; see Sha256::ForceScalarForBenchmarks

#ifdef BFT_SHA_NI_POSSIBLE

bool HasShaNi() {
  static const bool supported = __builtin_cpu_supports("sha") &&
                                __builtin_cpu_supports("ssse3") &&
                                __builtin_cpu_supports("sse4.1");
  return supported && !g_force_scalar;
}

// x86 SHA-extensions kernel (the standard two-lane ABEF/CDGH formulation). Compresses `n`
// consecutive blocks with the working state pinned in registers. Compiled with a function-
// level target attribute so the rest of the binary stays portable; only reached after the
// cpuid check above.
__attribute__((target("sha,ssse3,sse4.1"))) void ProcessBlocksShaNi(
    std::array<uint32_t, 8>& state, const uint8_t* data, size_t n) {
  const __m128i kShuffleMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  auto k = [](int i) {
    return _mm_set_epi32(static_cast<int>(kK[i + 3]), static_cast<int>(kK[i + 2]),
                         static_cast<int>(kK[i + 1]), static_cast<int>(kK[i]));
  };

  // Repack a,b,...,h into the ABEF / CDGH lane order the rnds2 instruction expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  while (n > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, tmp4;

    // Rounds 0-15: load and byte-swap the message words.
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffleMask);
    msg = _mm_add_epi32(msg0, k(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffleMask);
    msg = _mm_add_epi32(msg1, k(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffleMask);
    msg = _mm_add_epi32(msg2, k(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffleMask);
    msg = _mm_add_epi32(msg3, k(12));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp4 = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp4);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-47: full schedule recurrence, message registers rotating roles.
    for (int i = 16; i < 48; i += 16) {
      msg = _mm_add_epi32(msg0, k(i));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp4 = _mm_alignr_epi8(msg0, msg3, 4);
      msg1 = _mm_add_epi32(msg1, tmp4);
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
      msg3 = _mm_sha256msg1_epu32(msg3, msg0);

      msg = _mm_add_epi32(msg1, k(i + 4));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp4 = _mm_alignr_epi8(msg1, msg0, 4);
      msg2 = _mm_add_epi32(msg2, tmp4);
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
      state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);

      msg = _mm_add_epi32(msg2, k(i + 8));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp4 = _mm_alignr_epi8(msg2, msg1, 4);
      msg3 = _mm_add_epi32(msg3, tmp4);
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
      state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
      msg1 = _mm_sha256msg1_epu32(msg1, msg2);

      msg = _mm_add_epi32(msg3, k(i + 12));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp4 = _mm_alignr_epi8(msg3, msg2, 4);
      msg0 = _mm_add_epi32(msg0, tmp4);
      msg0 = _mm_sha256msg2_epu32(msg0, msg3);
      state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
      msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    }

    // Rounds 48-63: schedule tail. The 48-51 group still owes the msg1 feed for w[60..63];
    // after that the remaining words are already complete.
    msg = _mm_add_epi32(msg0, k(48));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp4 = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp4);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    msg = _mm_add_epi32(msg1, k(52));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp4 = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp4);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    msg = _mm_add_epi32(msg2, k(56));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp4 = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp4);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    msg = _mm_add_epi32(msg3, k(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
    --n;
  }

  // Repack ABEF / CDGH back into a,b,...,h order.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // BFT_SHA_NI_POSSIBLE

}  // namespace

Sha256::Sha256() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
}

void Sha256::ProcessBlocks(const uint8_t* blocks, size_t n) {
#ifdef BFT_SHA_NI_POSSIBLE
  if (HasShaNi()) {
    ProcessBlocksShaNi(state_, blocks, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    ProcessBlock(blocks + i * 64);
  }
}

void Sha256::Compress(std::array<uint32_t, 8>& h, const uint8_t* blocks, size_t n) {
#ifdef BFT_SHA_NI_POSSIBLE
  if (HasShaNi()) {
    ProcessBlocksShaNi(h, blocks, n);
    return;
  }
#endif
  Sha256 tmp;
  tmp.state_ = h;
  for (size_t i = 0; i < n; ++i) {
    tmp.ProcessBlock(blocks + i * 64);
  }
  h = tmp.state_;
}

void Sha256::ProcessBlock(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];
  uint32_t e = state_[4];
  uint32_t f = state_[5];
  uint32_t g = state_[6];
  uint32_t h = state_[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(ByteView data) {
  total_len_ += data.size();
  size_t offset = 0;
  if (buffer_len_ > 0) {
    size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  if (size_t whole = (data.size() - offset) / 64; whole > 0) {
    ProcessBlocks(data.data() + offset, whole);
    offset += whole * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha256::DigestBytes Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad[72];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  while ((total_len_ + pad_len) % 64 != 56) {
    pad[pad_len++] = 0;
  }
  Update(ByteView(pad, pad_len));
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(ByteView(len_bytes, 8));

  DigestBytes out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha256::DigestBytes Sha256::Hash(ByteView data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

bool Sha256::UsingShaNi() {
#ifdef BFT_SHA_NI_POSSIBLE
  return HasShaNi();
#else
  return false;
#endif
}

void Sha256::ForceScalarForBenchmarks(bool force) { g_force_scalar = force; }

Sha256::MidState Sha256::Snapshot() const {
  return MidState{state_, total_len_};
}

void Sha256::Restore(const MidState& mid) {
  state_ = mid.h;
  total_len_ = mid.total_len;
  buffer_len_ = 0;
}

}  // namespace bft

// HMAC-SHA-256 (RFC 2104). Basis for MACs and simulated signatures.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"

namespace bft {

// Precomputed HMAC key schedule: the SHA-256 midstates after absorbing the ipad and opad
// blocks. Building one costs two compression calls; each Mac() afterwards costs only the
// message and the 32-byte inner digest — the per-message floor for HMAC. Session keys are
// long-lived (refreshed on NEW-KEY epochs), so the hot path caches these per peer.
class HmacState {
 public:
  HmacState() = default;
  explicit HmacState(ByteView key);

  Sha256::DigestBytes Mac(ByteView message) const;

 private:
  Sha256::MidState inner_{};
  Sha256::MidState outer_{};
};

Sha256::DigestBytes HmacSha256(ByteView key, ByteView message);

}  // namespace bft

#endif  // SRC_CRYPTO_HMAC_H_

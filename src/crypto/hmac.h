// HMAC-SHA-256 (RFC 2104). Basis for MACs and simulated signatures.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"

namespace bft {

Sha256::DigestBytes HmacSha256(ByteView key, ByteView message);

}  // namespace bft

#endif  // SRC_CRYPTO_HMAC_H_

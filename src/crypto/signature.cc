#include "src/crypto/signature.h"

#include "src/common/serializer.h"
#include "src/crypto/hmac.h"

namespace bft {

namespace {
Signature MakeSignature(ByteView secret, ByteView message) {
  Sha256::DigestBytes core = HmacSha256(secret, message);
  Signature sig;
  sig.bytes.assign(core.begin(), core.end());
  // Pad deterministically to the Rabin-1024 wire size so message-size-dependent costs in the
  // network model match the paper's.
  Sha256::DigestBytes fill = core;
  while (sig.bytes.size() < Signature::kSize) {
    fill = Sha256::Hash(ByteView(fill.data(), fill.size()));
    size_t take = std::min(fill.size(), Signature::kSize - sig.bytes.size());
    sig.bytes.insert(sig.bytes.end(), fill.begin(), fill.begin() + take);
  }
  return sig;
}
}  // namespace

std::unique_ptr<PrivateKey> PublicKeyDirectory::Generate(PrincipalId id, uint64_t seed) {
  // Hash-derived so that distinct (id, seed) pairs can never collide the way cheap integer
  // mixing can.
  Writer w;
  w.Str("bft-keygen");
  w.U32(id);
  w.U64(seed);
  Sha256::DigestBytes derived = Sha256::Hash(w.data());
  Bytes secret(derived.begin(), derived.end());
  {
    WriterMutexLock lock(mu_);
    secrets_[id] = secret;
  }
  return std::unique_ptr<PrivateKey>(new PrivateKey(id, std::move(secret)));
}

bool PublicKeyDirectory::Verify(PrincipalId id, ByteView message, const Signature& sig) const {
  Bytes secret;
  {
    ReaderMutexLock lock(mu_);
    auto it = secrets_.find(id);
    if (it == secrets_.end()) {
      return false;
    }
    secret = it->second;  // copy out: MakeSignature hashes outside the lock
  }
  return MakeSignature(secret, message) == sig;
}

Signature PrivateKey::Sign(ByteView message) const { return MakeSignature(secret_, message); }

}  // namespace bft

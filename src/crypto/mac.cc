#include "src/crypto/mac.h"

#include <cstring>

#include "src/crypto/hmac.h"

namespace bft {

MacTag ComputeMac(ByteView key, ByteView message) {
  Sha256::DigestBytes full = HmacSha256(key, message);
  MacTag tag;
  std::memcpy(tag.bytes.data(), full.data(), MacTag::kSize);
  return tag;
}

MacTag ComputeMac(const HmacState& state, ByteView message) {
  Sha256::DigestBytes full = state.Mac(message);
  MacTag tag;
  std::memcpy(tag.bytes.data(), full.data(), MacTag::kSize);
  return tag;
}

bool MacEqual(const MacTag& a, const MacTag& b) {
  uint8_t acc = 0;
  for (size_t i = 0; i < MacTag::kSize; ++i) {
    acc |= static_cast<uint8_t>(a.bytes[i] ^ b.bytes[i]);
  }
  return acc == 0;
}

}  // namespace bft

// Deterministic pseudo-random number generator (xoshiro256** seeded by splitmix64).
//
// Every simulation run is a pure function of one seed, which makes adversarial schedules in
// tests replayable. Not cryptographic; crypto keys in this repo are simulation artifacts.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace bft {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Chance(double p) { return Uniform() < p; }

  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(Next());
    }
    return out;
  }

  // Derives an independent child generator; used to give each node its own stream.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace bft

#endif  // SRC_COMMON_RNG_H_

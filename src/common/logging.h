// Minimal leveled logging. Off by default so benchmarks stay quiet; tests and examples can
// raise the level to trace protocol decisions.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace bft {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
// Thread-safe: the line is composed and written with a single write, so lines from
// concurrent event-loop threads never interleave.
void LogLine(LogLevel level, const std::string& line);
// Tags every LogLine from the calling thread with `prefix` (e.g. "n2" for replica 2's loop
// thread). Empty — the default, and the single-threaded simulator — keeps the bare format.
void SetThreadLogPrefix(std::string prefix);

}  // namespace bft

#define BFT_LOG(level, stream_expr)                            \
  do {                                                         \
    if (static_cast<int>(::bft::GetLogLevel()) >=              \
        static_cast<int>(::bft::LogLevel::level)) {            \
      std::ostringstream bft_log_oss;                          \
      bft_log_oss << stream_expr;                              \
      ::bft::LogLine(::bft::LogLevel::level, bft_log_oss.str()); \
    }                                                          \
  } while (0)

#define BFT_DEBUG(stream_expr) BFT_LOG(kDebug, stream_expr)
#define BFT_INFO(stream_expr) BFT_LOG(kInfo, stream_expr)
#define BFT_ERROR(stream_expr) BFT_LOG(kError, stream_expr)

#endif  // SRC_COMMON_LOGGING_H_

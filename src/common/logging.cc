#include "src/common/logging.h"

namespace bft {

namespace {
LogLevel g_level = LogLevel::kNone;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void LogLine(LogLevel level, const std::string& line) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), line.c_str());
}

}  // namespace bft

#include "src/common/logging.h"

#include <atomic>

#include "src/common/thread_annotations.h"

namespace bft {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kNone)};
// Serializes the fwrite below. Formatting happens outside the lock; the critical section is
// one buffered write, so concurrent RtNode loop threads never interleave within a line.
Mutex g_log_mu;
// Per-thread prefix ("n2", "client-1000", ...). RtNode::Loop tags its thread on entry, so
// every line an automaton logs says which node's loop emitted it. Empty (the default, and
// the single-threaded simulator) keeps the historical [L] format.
thread_local std::string t_prefix;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetThreadLogPrefix(std::string prefix) { t_prefix = std::move(prefix); }

void LogLine(LogLevel level, const std::string& line) {
  std::string full = "[";
  full += LevelName(level);
  if (!t_prefix.empty()) {
    full += ' ';
    full += t_prefix;
  }
  full += "] ";
  full += line;
  full += '\n';
  MutexLock lock(g_log_mu);
  std::fwrite(full.data(), 1, full.size(), stderr);
}

}  // namespace bft

// Canonical key-space ring shared by the shard router and keyed services.
//
// Keys hash (FNV-1a) onto a fixed ring of kNumBuckets buckets. The definition lives in
// common/ — below both src/service/ and src/shard/ — because two layers must agree on it:
// ShardMap (the versioned bucket->group assignment clients route by) and keyed services
// (which stamp per-bucket moved markers during live bucket migration). The ring geometry is
// fixed forever; only bucket *ownership* is versioned.
#ifndef SRC_COMMON_KEY_RING_H_
#define SRC_COMMON_KEY_RING_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace bft {

struct KeyRing {
  // Buckets on the hash ring. Fixed across map versions so bucket computation never changes;
  // only ownership moves. Must be a power of two.
  static constexpr uint32_t kNumBuckets = 4096;

  // Stable 64-bit key hash (FNV-1a); identical across runs, seeds, and processes.
  static uint64_t HashKey(ByteView key) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint8_t byte : key) {
      h ^= byte;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  static uint32_t BucketForKey(ByteView key) {
    return static_cast<uint32_t>(HashKey(key) & (kNumBuckets - 1));
  }
};

}  // namespace bft

#endif  // SRC_COMMON_KEY_RING_H_

// Clang thread-safety annotations + annotated lock wrappers — the repo's ONLY lock primitives.
//
// PBFT's safety argument assumes each replica is a correct *sequential* state machine; a data
// race inside a replica process voids the f-of-n fault model the whole system is built on.
// The real-clock runtime is the multi-threaded part of this repository (one event-loop thread
// per node, transport-internal delivery threads, harness threads), and its lock discipline
// used to live in comments ("All Locked helpers require mu_", "Park releases the lock before
// its blocking wait"). This header turns those comments into machine-checked contracts:
//
//   - BFT_GUARDED_BY(mu)        field may only be touched with `mu` held
//   - BFT_REQUIRES(mu)          function must be entered with `mu` held exclusively
//   - BFT_REQUIRES_SHARED(mu)   ... held at least shared
//   - BFT_EXCLUDES(mu)          function must be entered with `mu` NOT held (deadlock guard;
//                               the PR-8 io_uring Park/Unregister deadlock, as an attribute)
//
// The macros expand to Clang's capability attributes under Clang and to nothing elsewhere, so
// GCC builds are unaffected; the CI lint lane builds with Clang and -Werror=thread-safety, and
// tests/annotation_compile/ pins that the macros are not silently expanding to nothing there.
//
// Raw std::mutex / std::shared_mutex / std::condition_variable are banned outside this header
// (enforced by tools/bft_lint.py rule `raw-mutex`): the analysis only sees locks acquired
// through annotated types, so one un-wrapped mutex is a hole in every contract above.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>  // bft-lint: allow(raw-mutex) the one wrapping site
#include <mutex>               // bft-lint: allow(raw-mutex) the one wrapping site
#include <shared_mutex>        // bft-lint: allow(raw-mutex) the one wrapping site

// --- Attribute macros -----------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BFT_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef BFT_THREAD_ANNOTATION__
#define BFT_THREAD_ANNOTATION__(x)  // not Clang (or too old): annotations compile away
#endif

#define BFT_CAPABILITY(x) BFT_THREAD_ANNOTATION__(capability(x))
#define BFT_SCOPED_CAPABILITY BFT_THREAD_ANNOTATION__(scoped_lockable)
#define BFT_GUARDED_BY(x) BFT_THREAD_ANNOTATION__(guarded_by(x))
#define BFT_PT_GUARDED_BY(x) BFT_THREAD_ANNOTATION__(pt_guarded_by(x))
#define BFT_REQUIRES(...) BFT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define BFT_REQUIRES_SHARED(...) BFT_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define BFT_ACQUIRE(...) BFT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define BFT_ACQUIRE_SHARED(...) BFT_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define BFT_RELEASE(...) BFT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define BFT_RELEASE_SHARED(...) BFT_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define BFT_TRY_ACQUIRE(...) BFT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define BFT_EXCLUDES(...) BFT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define BFT_RETURN_CAPABILITY(x) BFT_THREAD_ANNOTATION__(lock_returned(x))
#define BFT_NO_THREAD_SAFETY_ANALYSIS BFT_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace bft {

// --- Annotated lock types -------------------------------------------------------------------
// Zero-overhead forwards around the std primitives; the indirection exists solely so the
// capability attributes have a type to hang off.

class BFT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BFT_ACQUIRE() { mu_.lock(); }
  void unlock() BFT_RELEASE() { mu_.unlock(); }
  bool try_lock() BFT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

class BFT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BFT_ACQUIRE() { mu_.lock(); }
  void unlock() BFT_RELEASE() { mu_.unlock(); }
  void lock_shared() BFT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() BFT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive hold of a Mutex. Unlock()/Lock() support the event-loop pattern of dropping
// the lock around a callback; the analysis tracks the toggles, so a blocking call or guarded
// access in the unlocked window is diagnosed.
class BFT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BFT_ACQUIRE(mu) : mu_(mu), held_(true) { mu_.lock(); }
  ~MutexLock() BFT_RELEASE() {
    if (held_) {
      mu_.unlock();
    }
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() BFT_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void Lock() BFT_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

// RAII shared (reader) hold of a SharedMutex. Per-node transport operations take this: many
// loop threads share the map lock, only Register/Unregister serialize exclusively.
class BFT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) BFT_ACQUIRE_SHARED(mu) : mu_(mu), held_(true) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() BFT_RELEASE() {
    if (held_) {
      mu_.unlock_shared();
    }
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

  void Unlock() BFT_RELEASE() {
    held_ = false;
    mu_.unlock_shared();
  }
  void Lock() BFT_ACQUIRE_SHARED() {
    mu_.lock_shared();
    held_ = true;
  }

 private:
  SharedMutex& mu_;
  bool held_;
};

// RAII exclusive (writer) hold of a SharedMutex.
class BFT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) BFT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterMutexLock() BFT_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to the annotated Mutex. Waits REQUIRE the mutex — the analysis
// then knows the caller holds it across the wait, and the blocking-under-lock lint recognizes
// the waited-on mutex as the one legitimately held. Timed waits return false on timeout.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) BFT_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      BFT_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_until(adopted, deadline) == std::cv_status::no_timeout;
    adopted.release();
    return ok;
  }

  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& rel) BFT_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_for(adopted, rel) == std::cv_status::no_timeout;
    adopted.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bft

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_

// Byte-buffer aliases and small helpers used across the BFT library.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bft {

// The universal message/value representation. Plain std::vector keeps ownership semantics
// obvious; std::span is used for read-only views.
using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline void Append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline bool Equal(ByteView a, ByteView b) {
  return a.size() == b.size() && (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

// Renders bytes as lowercase hex; used in logs and test diagnostics.
std::string HexEncode(ByteView b);

// Parses lowercase/uppercase hex; returns empty on malformed input of odd length or non-hex
// characters (sufficient for test vectors).
Bytes HexDecode(std::string_view hex);

}  // namespace bft

#endif  // SRC_COMMON_BYTES_H_

// Little-endian binary writer/reader used for all wire formats.
//
// Decoding is defensive: a Reader never throws and never reads past the end of its input;
// callers check ok() once after decoding a whole message. This matches the threat model —
// Byzantine nodes may send arbitrary byte strings.
#ifndef SRC_COMMON_SERIALIZER_H_
#define SRC_COMMON_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace bft {

class Writer {
 public:
  Writer() = default;

  // Size-hint reservation: encoders that know (or can bound) their output size skip the
  // doubling-growth reallocations on the hot path.
  explicit Writer(size_t size_hint) { buf_.reserve(size_hint); }

  void Reserve(size_t size_hint) { buf_.reserve(buf_.size() + size_hint); }

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) {
    for (int i = 0; i < 2; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  // Raw bytes without a length prefix (fixed-size fields such as digests and MAC tags).
  void Raw(ByteView b) { Append(buf_, b); }

  // Length-prefixed variable-size field.
  void Var(ByteView b) {
    U32(static_cast<uint32_t>(b.size()));
    Raw(b);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  // Patches a previously written u32 at `offset` (used for total-size headers).
  void PatchU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView b) : data_(b) {}

  uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  uint16_t U16() { return static_cast<uint16_t>(ReadLe(2)); }
  uint32_t U32() { return static_cast<uint32_t>(ReadLe(4)); }
  uint64_t U64() { return ReadLe(8); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }

  Bytes Raw(size_t n) {
    if (!Need(n)) {
      return {};
    }
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

  Bytes Var() {
    uint32_t n = U32();
    if (!Need(n)) {
      ok_ = false;
      return {};
    }
    return Raw(n);
  }

  std::string Str() {
    Bytes b = Var();
    return std::string(b.begin(), b.end());
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  uint64_t ReadLe(int n) {
    if (!Need(static_cast<size_t>(n))) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  ByteView data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace bft

#endif  // SRC_COMMON_SERIALIZER_H_

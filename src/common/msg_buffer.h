// Refcounted immutable message buffer: encode once, share everywhere.
//
// A protocol multicast used to deep-copy its encoded bytes once per destination (and once
// more per queue hop). MsgBuffer is a flat byte buffer behind a shared_ptr, so the same
// serialization is handed to every destination, every in-flight simulator event, and every
// runtime mailbox by bumping a refcount. Authenticators make this safe: a multicast already
// carries one MAC slot per receiver in a single trailer, so the bytes on the wire are
// identical for all n-1 destinations.
//
// Implicitly constructible from Bytes so producers keep writing
// `Send(dst, EncodeMessage(m))`; the conversion is the single point where ownership of the
// encoding transfers into shared storage.
#ifndef SRC_COMMON_MSG_BUFFER_H_
#define SRC_COMMON_MSG_BUFFER_H_

#include <memory>
#include <utility>

#include "src/common/bytes.h"

namespace bft {

class MsgBuffer {
 public:
  MsgBuffer() = default;

  // Implicit by design: adopting an encoded Bytes is the common producer idiom.
  MsgBuffer(Bytes bytes) : data_(std::make_shared<const Bytes>(std::move(bytes))) {}

  // Copies `view` into exactly-sized shared storage (receive paths with reusable buffers).
  explicit MsgBuffer(ByteView view) : data_(std::make_shared<const Bytes>(view.begin(), view.end())) {}

  bool empty() const { return data_ == nullptr || data_->empty(); }
  size_t size() const { return data_ == nullptr ? 0 : data_->size(); }
  const uint8_t* data() const { return data_ == nullptr ? nullptr : data_->data(); }

  ByteView view() const {
    return data_ == nullptr ? ByteView() : ByteView(data_->data(), data_->size());
  }

  const Bytes& bytes() const {
    static const Bytes kEmpty;
    return data_ == nullptr ? kEmpty : *data_;
  }

  // Materializes an owned copy, for consumers that mutate or outlive all refcounts.
  Bytes Copy() const { return Bytes(view().begin(), view().end()); }

 private:
  std::shared_ptr<const Bytes> data_;
};

}  // namespace bft

#endif  // SRC_COMMON_MSG_BUFFER_H_

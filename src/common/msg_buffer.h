// Refcounted immutable message buffer: encode once, share everywhere.
//
// A protocol multicast used to deep-copy its encoded bytes once per destination (and once
// more per queue hop). MsgBuffer is a flat byte buffer behind a shared_ptr, so the same
// serialization is handed to every destination, every in-flight simulator event, and every
// runtime mailbox by bumping a refcount. Authenticators make this safe: a multicast already
// carries one MAC slot per receiver in a single trailer, so the bytes on the wire are
// identical for all n-1 destinations.
//
// A MsgBuffer may also be a *slice* of a larger shared buffer: the formation layer packs
// many protocol messages into one datagram, and the receive side hands each frame out as a
// slice that keeps the whole datagram alive — no per-frame copy, one refcount per frame.
//
// Implicitly constructible from Bytes so producers keep writing
// `Send(dst, EncodeMessage(m))`; the conversion is the single point where ownership of the
// encoding transfers into shared storage.
#ifndef SRC_COMMON_MSG_BUFFER_H_
#define SRC_COMMON_MSG_BUFFER_H_

#include <cassert>
#include <memory>
#include <utility>

#include "src/common/bytes.h"

namespace bft {

class MsgBuffer {
 public:
  MsgBuffer() = default;

  // Implicit by design: adopting an encoded Bytes is the common producer idiom.
  MsgBuffer(Bytes bytes) : data_(std::make_shared<const Bytes>(std::move(bytes))) {
    size_ = data_->size();
  }

  // Copies `view` into exactly-sized shared storage (receive paths with reusable buffers).
  explicit MsgBuffer(ByteView view)
      : data_(std::make_shared<const Bytes>(view.begin(), view.end())) {
    size_ = data_->size();
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  const uint8_t* data() const { return data_ == nullptr ? nullptr : data_->data() + offset_; }

  ByteView view() const {
    return data_ == nullptr ? ByteView() : ByteView(data_->data() + offset_, size_);
  }

  // A sub-range sharing ownership of the underlying storage (frame extraction on the
  // formation receive path). The caller guarantees the range lies within this buffer.
  MsgBuffer Slice(size_t offset, size_t length) const {
    assert(offset + length <= size_);
    MsgBuffer out;
    out.data_ = data_;
    out.offset_ = offset_ + offset;
    out.size_ = length;
    return out;
  }

  // The whole backing buffer, for consumers predating ByteView. Only meaningful on unsliced
  // buffers (the simulator's network filter); slices exist only on the runtime receive path.
  const Bytes& bytes() const {
    static const Bytes kEmpty;
    assert(offset_ == 0 && (data_ == nullptr || size_ == data_->size()));
    return data_ == nullptr ? kEmpty : *data_;
  }

  // Materializes an owned copy, for consumers that mutate or outlive all refcounts.
  Bytes Copy() const { return Bytes(view().begin(), view().end()); }

 private:
  std::shared_ptr<const Bytes> data_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

}  // namespace bft

#endif  // SRC_COMMON_MSG_BUFFER_H_
